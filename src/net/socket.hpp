// Thin POSIX TCP helpers for the network serving front-end: an RAII fd,
// listen/connect constructors, and whole-buffer send/recv loops. Linux-only
// (like the rest of the repo's tooling); everything throws
// std::runtime_error with the errno message on failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hdczsc::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close the held fd (if any) and adopt `fd`.
  void reset(int fd = -1);
  /// Give up ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Listening socket on 0.0.0.0:`port` (SO_REUSEADDR; port 0 picks an
/// ephemeral port — read it back with local_port()).
Fd tcp_listen(std::uint16_t port, int backlog = 128);

/// Blocking connect to `host`:`port` (numeric or resolvable name).
/// TCP_NODELAY is set — the protocol writes whole frames, Nagle only adds
/// latency.
Fd tcp_connect(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket (the ephemeral port after
/// tcp_listen(0)).
std::uint16_t local_port(int fd);

void set_nonblocking(int fd, bool on);
void set_nodelay(int fd);

/// Write exactly `n` bytes to a *blocking* socket (loops over partial
/// writes and EINTR). Returns false when the peer is gone (EPIPE /
/// ECONNRESET); throws on any other error.
bool send_all(int fd, const void* buf, std::size_t n);

/// Read exactly `n` bytes from a *blocking* socket. Returns false on a
/// clean EOF before the first byte OR a connection reset; throws on any
/// other error. A mid-buffer EOF (peer died inside a frame) also returns
/// false — the caller cannot distinguish it from a pre-frame close, and
/// treats both as disconnect.
bool recv_all(int fd, void* buf, std::size_t n);

}  // namespace hdczsc::net
