#include "net/client.hpp"

#include <sys/socket.h>

#include "net/protocol.hpp"

namespace hdczsc::net {

NetClient::NetClient(const std::string& host, std::uint16_t port)
    : fd_(tcp_connect(host, port)) {
  reader_ = std::thread([this] { reader_loop(); });
}

NetClient::~NetClient() { close(); }

void NetClient::close() {
  // shutdown() (not ::close) breaks the reader out of its blocking recv
  // without racing the fd number; the fd itself is released afterwards.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  fail_all("connection closed");
  fd_.reset();
}

void NetClient::fail_all(const std::string& why) {
  dead_.store(true);
  std::map<std::uint64_t, std::promise<serve::InferResult>> pending;
  std::vector<std::promise<bool>> pings;
  std::map<std::uint64_t, std::promise<AppendResult>> appends;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    pending.swap(pending_);
    appends.swap(pending_appends_);
    pings.swap(pending_pings_);
  }
  for (auto& [id, prom] : pending)
    prom.set_value(serve::make_error_result(id, serve::InferStatus::kTransport, why));
  for (auto& [id, prom] : appends) {
    AppendResult res;
    res.request_id = id;
    res.status = serve::InferStatus::kTransport;
    res.message = why;
    prom.set_value(std::move(res));
  }
  for (auto& prom : pings) prom.set_value(false);
}

namespace {

std::future<AppendResult> ready_append_result(AppendResult res) {
  std::promise<AppendResult> prom;
  prom.set_value(std::move(res));
  return prom.get_future();
}

AppendResult append_error(std::uint64_t id, serve::InferStatus status, std::string why) {
  AppendResult res;
  res.request_id = id;
  res.status = status;
  res.message = std::move(why);
  return res;
}

}  // namespace

std::future<serve::InferResult> NetClient::submit(serve::InferRequest req) {
  if (dead_.load())
    return serve::make_ready_result(serve::make_error_result(
        req.request_id, serve::InferStatus::kTransport, "connection is closed"));
  if (req.request_id == 0) req.request_id = next_id_.fetch_add(1);

  std::future<serve::InferResult> fut;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    auto [it, inserted] = pending_.emplace(req.request_id, std::promise<serve::InferResult>{});
    if (!inserted)
      return serve::make_ready_result(serve::make_error_result(
          req.request_id, serve::InferStatus::kBadRequest,
          "request_id " + std::to_string(req.request_id) + " is already in flight"));
    fut = it->second.get_future();
  }

  std::vector<char> frame;
  try {
    frame = encode_request_frame(req);
  } catch (const ProtocolError& e) {
    std::lock_guard<std::mutex> guard(pending_mu_);
    auto it = pending_.find(req.request_id);
    if (it != pending_.end()) {
      it->second.set_value(serve::make_error_result(req.request_id, e.status(), e.what()));
      pending_.erase(it);
    }
    return fut;
  }

  bool sent = false;
  try {
    std::lock_guard<std::mutex> guard(write_mu_);
    sent = send_all(fd_.get(), frame.data(), frame.size());
  } catch (const std::exception&) {
    sent = false;
  }
  if (!sent) fail_all("connection lost while sending");
  return fut;
}

serve::InferResult NetClient::infer(serve::InferRequest req) {
  return submit(std::move(req)).get();
}

std::future<AppendResult> NetClient::submit_append(AppendRequest req) {
  if (dead_.load())
    return ready_append_result(append_error(req.request_id, serve::InferStatus::kTransport,
                                            "connection is closed"));
  if (req.request_id == 0) req.request_id = next_id_.fetch_add(1);

  std::future<AppendResult> fut;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    auto [it, inserted] =
        pending_appends_.emplace(req.request_id, std::promise<AppendResult>{});
    if (!inserted)
      return ready_append_result(append_error(
          req.request_id, serve::InferStatus::kBadRequest,
          "request_id " + std::to_string(req.request_id) + " is already in flight"));
    fut = it->second.get_future();
  }

  std::vector<char> frame;
  try {
    frame = encode_append_request_frame(req);
  } catch (const ProtocolError& e) {
    std::lock_guard<std::mutex> guard(pending_mu_);
    auto it = pending_appends_.find(req.request_id);
    if (it != pending_appends_.end()) {
      it->second.set_value(append_error(req.request_id, e.status(), e.what()));
      pending_appends_.erase(it);
    }
    return fut;
  }

  bool sent = false;
  try {
    std::lock_guard<std::mutex> guard(write_mu_);
    sent = send_all(fd_.get(), frame.data(), frame.size());
  } catch (const std::exception&) {
    sent = false;
  }
  if (!sent) fail_all("connection lost while sending");
  return fut;
}

AppendResult NetClient::append_classes(AppendRequest req) {
  return submit_append(std::move(req)).get();
}

bool NetClient::ping() {
  if (dead_.load()) return false;
  std::future<bool> fut;
  {
    std::lock_guard<std::mutex> guard(pending_mu_);
    pending_pings_.emplace_back();
    fut = pending_pings_.back().get_future();
  }
  const std::vector<char> frame = encode_control_frame(FrameType::kPing);
  bool sent = false;
  try {
    std::lock_guard<std::mutex> guard(write_mu_);
    sent = send_all(fd_.get(), frame.data(), frame.size());
  } catch (const std::exception&) {
    sent = false;
  }
  if (!sent) {
    fail_all("connection lost while sending");
    return false;
  }
  return fut.get();
}

void NetClient::reader_loop() {
  std::vector<char> payload;
  for (;;) {
    char header_buf[kHeaderBytes];
    if (!recv_all(fd_.get(), header_buf, kHeaderBytes)) {
      fail_all("connection closed by server");
      return;
    }
    FrameHeader header;
    try {
      header = decode_header(header_buf);
    } catch (const ProtocolError& e) {
      fail_all(e.what());
      return;
    }
    payload.resize(header.payload_bytes);
    if (header.payload_bytes > 0 &&
        !recv_all(fd_.get(), payload.data(), payload.size())) {
      fail_all("connection closed mid-frame");
      return;
    }

    if (header.type == FrameType::kPong) {
      std::promise<bool> prom;
      bool have = false;
      {
        std::lock_guard<std::mutex> guard(pending_mu_);
        if (!pending_pings_.empty()) {
          prom = std::move(pending_pings_.front());
          pending_pings_.erase(pending_pings_.begin());
          have = true;
        }
      }
      if (have) prom.set_value(true);
      continue;
    }
    if (header.type == FrameType::kAppendResponse) {
      AppendResult res;
      try {
        res = decode_append_response_payload(payload.data(), payload.size());
      } catch (const ProtocolError& e) {
        fail_all(e.what());
        return;
      }
      std::promise<AppendResult> prom;
      bool have = false;
      {
        std::lock_guard<std::mutex> guard(pending_mu_);
        auto it = pending_appends_.find(res.request_id);
        if (it != pending_appends_.end()) {
          prom = std::move(it->second);
          pending_appends_.erase(it);
          have = true;
        }
      }
      if (have) prom.set_value(std::move(res));
      continue;
    }
    if (header.type != FrameType::kInferResponse) continue;  // tolerate unknown-but-valid

    serve::InferResult res;
    try {
      res = decode_response_payload(payload.data(), payload.size());
    } catch (const ProtocolError& e) {
      fail_all(e.what());
      return;
    }
    std::promise<serve::InferResult> prom;
    bool have = false;
    {
      std::lock_guard<std::mutex> guard(pending_mu_);
      auto it = pending_.find(res.request_id);
      if (it != pending_.end()) {
        prom = std::move(it->second);
        pending_.erase(it);
        have = true;
      }
    }
    // Unmatched ids (e.g. a server-side kBadFrame report with id 0) are
    // dropped: the in-flight request it displaced resolves via fail_all
    // when the server closes the connection.
    if (have) prom.set_value(std::move(res));
  }
}

}  // namespace hdczsc::net
