#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hdczsc::obs {

namespace {

// Prometheus label values escape backslash, double-quote and newline;
// metric/label names in this codebase are already [a-zA-Z0-9_:].
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& reg) {
  std::string out;
  std::string last_name;  // # HELP / # TYPE once per metric family
  reg.for_each([&](const Registry::Entry& e) {
    const bool new_family = e.name != last_name;
    last_name = e.name;
    if (e.counter) {
      if (new_family) {
        if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
        out += "# TYPE " + e.name + " counter\n";
      }
      out += e.name + prom_labels(e.labels) + " " + std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge) {
      if (new_family) {
        if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
        out += "# TYPE " + e.name + " gauge\n";
      }
      out += e.name + prom_labels(e.labels) + " " + fmt_double(e.gauge->value()) + "\n";
    } else if (e.histogram) {
      if (new_family) {
        if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
        out += "# TYPE " + e.name + " histogram\n";
      }
      // Cumulative le-buckets over the non-empty subset of the fixed grid —
      // a legal sparse encoding (Prometheus only requires le to ascend and
      // counts to be cumulative).
      std::uint64_t cum = 0;
      for (const Histogram::Bucket& b : e.histogram->nonzero_buckets()) {
        cum += b.count;
        out += e.name + "_bucket" +
               prom_labels(e.labels, "le=\"" + fmt_double(b.upper) + "\"") + " " +
               std::to_string(cum) + "\n";
      }
      out += e.name + "_bucket" + prom_labels(e.labels, "le=\"+Inf\"") + " " +
             std::to_string(e.histogram->count()) + "\n";
      out += e.name + "_sum" + prom_labels(e.labels) + " " + fmt_double(e.histogram->sum()) +
             "\n";
      out += e.name + "_count" + prom_labels(e.labels) + " " +
             std::to_string(e.histogram->count()) + "\n";
    }
  });
  return out;
}

std::string to_json(const Registry& reg) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  reg.for_each([&](const Registry::Entry& e) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(e.name) + "\", ";
    out += "\"labels\": {";
    bool lf = true;
    for (const auto& [k, v] : e.labels) {
      if (!lf) out += ", ";
      lf = false;
      out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    }
    out += "}, ";
    if (e.counter) {
      out += "\"type\": \"counter\", \"value\": " + std::to_string(e.counter->value());
    } else if (e.gauge) {
      out += "\"type\": \"gauge\", \"value\": " + fmt_double(e.gauge->value());
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += "\"type\": \"histogram\", \"count\": " + std::to_string(h.count()) +
             ", \"sum\": " + fmt_double(h.sum()) + ", \"min\": " + fmt_double(h.min()) +
             ", \"max\": " + fmt_double(h.max()) + ", \"mean\": " + fmt_double(h.mean()) +
             ", \"p50\": " + fmt_double(h.percentile(0.50)) +
             ", \"p90\": " + fmt_double(h.percentile(0.90)) +
             ", \"p99\": " + fmt_double(h.percentile(0.99)) +
             ", \"p999\": " + fmt_double(h.percentile(0.999));
    }
    out += "}";
  });
  out += "\n  ]\n}\n";
  return out;
}

void dump_metrics_file(const std::string& path, const Registry& reg) {
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("obs::dump_metrics_file: cannot open " + path);
  f << (json ? to_json(reg) : to_prometheus(reg));
  if (!f) throw std::runtime_error("obs::dump_metrics_file: write failed for " + path);
}

PeriodicReporter::PeriodicReporter(double interval_s, std::function<void()> fn)
    : fn_(std::move(fn)), interval_s_(interval_s > 0.0 ? interval_s : 1.0) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto interval =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(interval_s_));
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      lock.unlock();  // run the callback without the lock: it may be slow
      fn_();
      lock.lock();
    }
  });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace hdczsc::obs
