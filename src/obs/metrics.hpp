// Lock-cheap metrics core for the serving stack.
//
// Every primitive here is safe to hit from any number of threads with a
// wait-free record path — the design constraint is that instrumentation on
// the serving hot path must not distort the p99 it reports:
//
//  * Counter    — per-thread-sharded relaxed atomics: an increment touches
//                 one cacheline owned (statistically) by the calling thread,
//                 so concurrent workers never bounce a shared line. Reads
//                 sum the shards; after writer threads are quiesced (joined)
//                 the sum is exact.
//  * Gauge      — one atomic double with set / observe_max semantics.
//  * Histogram  — log-bucketed fixed-memory latency histogram
//                 (HdrHistogram-style): 64 sub-buckets per power of two
//                 give ≤ 1/128 ≈ 0.8 % relative quantile error from a flat
//                 array of a few thousand bucket counters. record() is one
//                 frexp + one relaxed fetch_add — no mutex, no allocation,
//                 O(buckets) memory forever regardless of sample count.
//  * Registry   — get-or-create store of named metrics (with Prometheus-
//                 style labels) that the exporters in obs/export.hpp walk.
//                 Metrics are shared_ptr-owned so a metric outlives the
//                 component that created it (a hot-reloaded model continues
//                 its series; a reporter thread never dangles).
//
// Kernel profiling hooks: ScopedTimer records a duration into a histogram
// on scope exit, but only when profiling is enabled at runtime
// (set_profiling_enabled) — disabled, the constructor is one relaxed load
// and no clock is read, so instrumented kernels run at full speed.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hdczsc::obs {

/// Dense per-thread index used to spread counter increments across shards
/// (assigned on first use, monotonically; see util::thread_tag for the
/// log-correlation variant).
std::size_t thread_slot();

// ---------------------------------------------------------------------------
// Counter

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  /// Wait-free: one relaxed fetch_add on this thread's shard.
  void add(std::uint64_t n = 1) {
    shards_[thread_slot() & (kShards - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Exact once concurrent writers are quiesced; during
  /// concurrent writes it is a consistent lower bound (never torn).
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

// ---------------------------------------------------------------------------
// Gauge

class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }

  /// Monotone high-water mark (CAS loop; contended only while the mark is
  /// actually rising).
  void observe_max(double x) {
    double cur = v_.load(std::memory_order_relaxed);
    while (x > cur && !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// ---------------------------------------------------------------------------
// Histogram

class Histogram {
 public:
  /// 2^kSubBits sub-buckets per power of two: bucket width is 1/64 of its
  /// octave, so reporting the bucket midpoint is at most 1/128 ≈ 0.79 % off
  /// the true value — inside the 1 % design bound, and well inside the 2 %
  /// test gate in tests/test_obs.cpp.
  static constexpr int kSubBits = 6;
  static constexpr int kSub = 1 << kSubBits;
  /// Value range [2^kMinExp, 2^kMaxExp): for millisecond-denominated
  /// latencies that is ~1 ns .. ~4.7 h. Out-of-range values clamp to the
  /// edge buckets (min/max still record the true extremes).
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 24;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * static_cast<std::size_t>(kSub);

  /// Wait-free: bucket index arithmetic + three relaxed fetch_adds (bucket,
  /// count, fixed-point sum) and a CAS min/max pair.
  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values (fixed-point at 1/1024 resolution).
  double sum() const {
    return static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) / 1024.0;
  }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  /// True extremes of everything recorded (not bucket-quantized).
  double min() const;
  double max() const;

  /// Quantile estimate from the bucket counts: the bucket midpoint of the
  /// sample at rank floor(q·n), clamped to the observed [min, max]. Matches
  /// the nth_element convention the exact-sort reference uses, within the
  /// bucket resolution.
  double percentile(double q) const;

  /// Non-empty buckets for exporters: upper edge + count, ascending.
  struct Bucket {
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

  void reset();

  /// Fixed memory footprint — independent of how many samples were
  /// recorded (the regression guarantee that replaced ServingStats'
  /// unbounded latency vector).
  static constexpr std::size_t memory_bytes() { return sizeof(Histogram); }

 private:
  static std::size_t bucket_index(double v);
  static double bucket_mid(std::size_t idx);

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_fp_{0};
  std::atomic<double> min_{kInf};  // monotone CAS extremes; valid iff count_ > 0
  std::atomic<double> max_{-kInf};
};

// ---------------------------------------------------------------------------
// Registry

/// Prometheus-style labels, e.g. {{"model", "m0"}, {"stage", "embed"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  /// Get-or-create. The same (name, labels) always yields the same
  /// underlying metric, so a component re-created under the same identity
  /// (model hot reload) continues the series. Throws std::logic_error if
  /// the identity already exists with a different kind.
  std::shared_ptr<Counter> counter(const std::string& name, const Labels& labels = {},
                                   const std::string& help = "");
  std::shared_ptr<Gauge> gauge(const std::string& name, const Labels& labels = {},
                               const std::string& help = "");
  std::shared_ptr<Histogram> histogram(const std::string& name, const Labels& labels = {},
                                       const std::string& help = "");

  /// One registered metric; exactly one of the pointers is non-null.
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  /// Visit every metric ordered by (name, rendered labels) — the order the
  /// exporters emit.
  void for_each(const std::function<void(const Entry&)>& fn) const;

  std::size_t size() const;

  /// Zero every registered metric (bench/test isolation; identities stay
  /// registered).
  void reset_all();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // key: name + '\0' + rendered labels
};

/// The process-wide registry the serving stack registers into and the
/// exporters dump.
Registry& default_registry();

// ---------------------------------------------------------------------------
// Runtime-gated kernel profiling

/// Global switch for the ScopedTimer hooks compiled into tensor/hdc/serve
/// kernels. Off (the default) a hook is one relaxed load — no clock read,
/// no record.
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// Records elapsed milliseconds into `h` on destruction iff profiling was
/// enabled when the scope was entered (and `h` is non-null).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(profiling_enabled() ? h : nullptr) {
    if (h_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_)
      h_->record(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hdczsc::obs
