#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace hdczsc::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kQueueWait: return "queue-wait";
    case Stage::kCollect: return "collect";
    case Stage::kEmbed: return "embed";
    case Stage::kScore: return "score";
    case Stage::kReply: return "reply";
  }
  return "?";
}

Tracer::Tracer(const std::string& model, std::size_t slowest_capacity)
    : capacity_(std::max<std::size_t>(1, slowest_capacity)) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const Stage s = static_cast<Stage>(i);
    if (model.empty()) {
      stage_hist_[i] = std::make_shared<Histogram>();
    } else {
      stage_hist_[i] = default_registry().histogram(
          "serve_stage_ms", {{"model", model}, {"stage", stage_name(s)}},
          "per-request stage latency (ms) by pipeline stage");
    }
  }
  total_hist_ = model.empty()
                    ? std::make_shared<Histogram>()
                    : default_registry().histogram(
                          "serve_trace_total_ms", {{"model", model}},
                          "end-to-end traced request latency (ms), submit to reply");
  slow_.reserve(capacity_);
}

std::uint64_t Tracer::record(TraceSpan span) {
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumStages; ++i) stage_hist_[i]->record(span.stage_ms[i]);
  total_hist_->record(span.total_ms);

  // Postmortem ring: only take the lock while this span would actually
  // place (floor_ < 0 means the ring is not full yet).
  const double floor = floor_.load(std::memory_order_relaxed);
  if (span.total_ms > floor || floor < 0.0) {
    std::lock_guard<std::mutex> lock(slow_mu_);
    if (slow_.size() < capacity_) {
      slow_.push_back(span);
    } else {
      auto worst = std::min_element(slow_.begin(), slow_.end(),
                                    [](const TraceSpan& a, const TraceSpan& b) {
                                      return a.total_ms < b.total_ms;
                                    });
      if (span.total_ms <= worst->total_ms) return span.id;  // lost the race
      *worst = span;
    }
    if (slow_.size() == capacity_) {
      double mn = slow_[0].total_ms;
      for (const TraceSpan& s : slow_) mn = std::min(mn, s.total_ms);
      floor_.store(mn, std::memory_order_relaxed);
    }
  }
  return span.id;
}

std::vector<Tracer::StageStat> Tracer::stage_stats() const {
  std::vector<StageStat> out;
  out.reserve(kNumStages + 1);
  auto fold = [&](const std::string& name, const Histogram& h) {
    out.push_back({name, h.count(), h.mean(), h.percentile(0.50), h.percentile(0.99),
                   h.percentile(0.999), h.max()});
  };
  for (std::size_t i = 0; i < kNumStages; ++i)
    fold(stage_name(static_cast<Stage>(i)), *stage_hist_[i]);
  fold("total", *total_hist_);
  return out;
}

std::vector<TraceSpan> Tracer::slowest() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.total_ms > b.total_ms; });
  return out;
}

util::Table Tracer::to_table(const std::string& title) const {
  util::Table t(title);
  t.set_header({"stage", "count", "mean ms", "p50 ms", "p99 ms", "p999 ms", "max ms"});
  for (const StageStat& s : stage_stats())
    t.add_row({s.stage, std::to_string(s.count), util::Table::num(s.mean_ms, 3),
               util::Table::num(s.p50_ms, 3), util::Table::num(s.p99_ms, 3),
               util::Table::num(s.p999_ms, 3), util::Table::num(s.max_ms, 3)});
  return t;
}

std::string Tracer::dump_slowest() const {
  std::string out;
  char line[256];
  for (const TraceSpan& s : slowest()) {
    std::snprintf(line, sizeof(line),
                  "trace #%llu total=%.3fms queue-wait=%.3f collect=%.3f embed=%.3f "
                  "score=%.3f reply=%.3f\n",
                  static_cast<unsigned long long>(s.id), s.total_ms,
                  s.stage(Stage::kQueueWait), s.stage(Stage::kCollect), s.stage(Stage::kEmbed),
                  s.stage(Stage::kScore), s.stage(Stage::kReply));
    out += line;
  }
  return out;
}

void Tracer::reset() {
  for (auto& h : stage_hist_) h->reset();
  total_hist_->reset();
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_.clear();
  floor_.store(-1.0, std::memory_order_relaxed);
}

}  // namespace hdczsc::obs
