#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdczsc::obs {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive (and NaN) clamp to the lowest bucket
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m·2^e, m ∈ [0.5, 1)
  // Octave E = e-1 covers [2^E, 2^(E+1)); sub-bucket from the mantissa:
  // m·2·kSub ∈ [kSub, 2·kSub).
  const long octave = static_cast<long>(e) - 1 - kMinExp;
  long sub = static_cast<long>(m * (2 * kSub)) - kSub;
  sub = std::clamp<long>(sub, 0, kSub - 1);
  const long idx = octave * kSub + sub;
  return static_cast<std::size_t>(std::clamp<long>(idx, 0, static_cast<long>(kBuckets) - 1));
}

double Histogram::bucket_mid(std::size_t idx) {
  const int octave = kMinExp + static_cast<int>(idx) / kSub;
  const int sub = static_cast<int>(idx) % kSub;
  return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kSub, octave);
}

void Histogram::record(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  sum_fp_.fetch_add(static_cast<std::int64_t>(std::llround(v * 1024.0)),
                    std::memory_order_relaxed);
  // True extremes via monotone CAS (min_ starts at +inf, max_ at -inf, so
  // the first sample wins both races without any ordering dependency).
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const { return count() ? min_.load(std::memory_order_relaxed) : 0.0; }
double Histogram::max() const { return count() ? max_.load(std::memory_order_relaxed) : 0.0; }

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      std::min<std::uint64_t>(n - 1, static_cast<std::uint64_t>(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum > rank) {
      double mid = bucket_mid(i);
      const double mn = min_.load(std::memory_order_relaxed);
      const double mx = max_.load(std::memory_order_relaxed);
      if (mn <= mx) mid = std::clamp(mid, mn, mx);  // mn > mx only mid-record
      return mid;
    }
  }
  return max();  // concurrent writer raced count_ ahead of its bucket
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const int octave = kMinExp + static_cast<int>(i) / kSub;
    const int sub = static_cast<int>(i) % kSub;
    out.push_back({std::ldexp(1.0 + (static_cast<double>(sub) + 1.0) / kSub, octave), c});
  }
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_fp_.store(0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

namespace {

std::string render_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string entry_key(const std::string& name, const Labels& labels) {
  return name + '\0' + render_labels(labels);
}

}  // namespace

std::shared_ptr<Counter> Registry::counter(const std::string& name, const Labels& labels,
                                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[entry_key(name, labels)];
  if (e.name.empty()) {
    e.name = name;
    e.labels = labels;
    e.help = help;
    e.counter = std::make_shared<Counter>();
  } else if (!e.counter) {
    throw std::logic_error("obs::Registry: '" + name + "' already registered with another kind");
  }
  return e.counter;
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name, const Labels& labels,
                                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[entry_key(name, labels)];
  if (e.name.empty()) {
    e.name = name;
    e.labels = labels;
    e.help = help;
    e.gauge = std::make_shared<Gauge>();
  } else if (!e.gauge) {
    throw std::logic_error("obs::Registry: '" + name + "' already registered with another kind");
  }
  return e.gauge;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name, const Labels& labels,
                                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[entry_key(name, labels)];
  if (e.name.empty()) {
    e.name = name;
    e.labels = labels;
    e.help = help;
    e.histogram = std::make_shared<Histogram>();
  } else if (!e.histogram) {
    throw std::logic_error("obs::Registry: '" + name + "' already registered with another kind");
  }
  return e.histogram;
}

void Registry::for_each(const std::function<void(const Entry&)>& fn) const {
  // Copy the entries (shared_ptrs, cheap) so fn runs without the lock —
  // exporters may take arbitrarily long rendering a large registry.
  std::vector<Entry> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, e] : entries_) snapshot.push_back(e);
  }
  for (const Entry& e : snapshot) fn(e);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

Registry& default_registry() {
  static Registry reg;
  return reg;
}

// ---------------------------------------------------------------------------
// Profiling switch

namespace {
std::atomic<bool> g_profiling{false};
}

bool profiling_enabled() { return g_profiling.load(std::memory_order_relaxed); }
void set_profiling_enabled(bool on) { g_profiling.store(on, std::memory_order_relaxed); }

}  // namespace hdczsc::obs
