// Per-request stage tracing for the serving stack.
//
// Every served request moves through the same pipeline:
//
//   admit ──▶ queue-wait ──▶ batch-collect ──▶ embed ──▶ score ──▶ reply
//   (submit)  (DynamicBatcher (shape check +    (CNN      (prototype (futures
//             coalescing)     batch assembly)   backbone)  top-k)     resolved)
//
// The worker loop stamps each boundary and hands the resulting TraceSpan to
// a Tracer, which (a) folds every stage into its own fixed-memory
// obs::Histogram — so per-stage p50/p99/p999 are always available at O(1)
// memory — and (b) keeps a small ring of the N *slowest* complete spans for
// postmortems ("why was that p999 request slow: queue or embed?").
//
// Cost model: histogram records are wait-free; the slowest-ring is guarded
// by a mutex but entered only when a span beats the ring's current floor
// (one relaxed load on the fast path), so steady-state tracing adds a few
// clock reads + a handful of relaxed fetch_adds per request. Tracing can be
// disabled per runtime (ServerConfig::tracing) — disabled, the worker loop
// takes no extra timestamps at all.
//
// Stage durations within one batch are shared by its members (the batch IS
// the unit of embed/score work); queue-wait and total are per request.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace hdczsc::obs {

/// Pipeline stages of one served request, in order.
enum class Stage : std::size_t {
  kQueueWait = 0,  ///< submit → the batch containing it was collected
  kCollect = 1,    ///< shape check + copy into the coalesced batch tensor
  kEmbed = 2,      ///< CNN backbone forward (whole batch)
  kScore = 3,      ///< prototype scan / top-k (whole batch)
  kReply = 4,      ///< promise resolution + telemetry bookkeeping
};
constexpr std::size_t kNumStages = 5;
const char* stage_name(Stage s);

/// One request's journey, all durations in milliseconds.
struct TraceSpan {
  std::uint64_t id = 0;  ///< assigned by Tracer::record, monotone per tracer
  std::array<double, kNumStages> stage_ms{};
  double total_ms = 0.0;  ///< submit → reply (≥ any stage; ≈ sum of stages)

  double stage(Stage s) const { return stage_ms[static_cast<std::size_t>(s)]; }
  double& stage(Stage s) { return stage_ms[static_cast<std::size_t>(s)]; }
};

class Tracer {
 public:
  /// `model` names the metric namespace: non-empty registers the per-stage
  /// histograms as serve_stage_ms{model=..., stage=...} (plus
  /// serve_trace_total_ms) in the default registry so exporters see them;
  /// empty keeps them private to this tracer. `slowest_capacity` bounds the
  /// postmortem ring.
  explicit Tracer(const std::string& model = "", std::size_t slowest_capacity = 16);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Fold one completed span in (assigns and returns its id). Call only
  /// when enabled() — the worker gates on it to skip the timestamps too.
  std::uint64_t record(TraceSpan span);

  /// Aggregated per-stage view (plus a "total" row).
  struct StageStat {
    std::string stage;
    std::uint64_t count = 0;
    double mean_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0, max_ms = 0.0;
  };
  std::vector<StageStat> stage_stats() const;

  /// The slowest complete spans seen so far, total_ms descending.
  std::vector<TraceSpan> slowest() const;

  /// Render stage_stats as a table (the serve_demo per-stage breakdown).
  util::Table to_table(const std::string& title = "per-stage latency") const;
  /// Human-readable slow-trace dump for postmortems (one line per span,
  /// docs/observability.md documents the format).
  std::string dump_slowest() const;

  void reset();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_id_{1};
  std::array<std::shared_ptr<Histogram>, kNumStages> stage_hist_;
  std::shared_ptr<Histogram> total_hist_;

  // Slowest-span ring: floor_ caches the smallest total in a *full* ring so
  // the common case (span is not a record) is one relaxed load, no lock.
  std::size_t capacity_;
  std::atomic<double> floor_{-1.0};
  mutable std::mutex slow_mu_;
  std::vector<TraceSpan> slow_;
};

}  // namespace hdczsc::obs
