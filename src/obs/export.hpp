// Machine-readable exporters over an obs::Registry, plus a periodic
// reporter thread.
//
// Two formats, both documented (with examples) in docs/observability.md:
//
//  * Prometheus text exposition format (to_prometheus): counters and
//    gauges as single samples, histograms as cumulative le-buckets (only
//    non-empty buckets are emitted — a valid subset of the fixed
//    log-bucket grid) plus _sum/_count. This is what a network front-end
//    will serve on /metrics.
//  * JSON (to_json): one object per metric; histograms carry
//    count/sum/min/max and the p50/p90/p99/p999 quantile estimates. This
//    is the metrics.json CI artifact next to BENCH_serving.json.
//
// Output is deterministic: metrics are emitted ordered by (name, labels),
// so golden-format tests can compare exact strings.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace hdczsc::obs {

/// Render every registered metric in Prometheus text exposition format.
std::string to_prometheus(const Registry& reg = default_registry());

/// Render every registered metric as a JSON document.
std::string to_json(const Registry& reg = default_registry());

/// Write `path` in the format its extension selects: ".json" → to_json,
/// anything else → to_prometheus. Throws std::runtime_error on I/O failure.
void dump_metrics_file(const std::string& path, const Registry& reg = default_registry());

/// Background thread invoking `fn` every `interval_s` seconds until stop()
/// (or destruction). First invocation happens one interval after
/// construction; stop() is idempotent and joins the thread.
class PeriodicReporter {
 public:
  PeriodicReporter(double interval_s, std::function<void()> fn);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  void stop();

 private:
  std::function<void()> fn_;
  double interval_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hdczsc::obs
