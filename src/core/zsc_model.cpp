#include "core/zsc_model.hpp"

namespace hdczsc::core {

ZscModel::ZscModel(std::unique_ptr<ImageEncoder> image_encoder,
                   std::unique_ptr<AttributeEncoder> attribute_encoder, float temp_scale)
    : image_encoder_(std::move(image_encoder)),
      attribute_encoder_(std::move(attribute_encoder)),
      class_kernel_(temp_scale),
      attribute_kernel_(temp_scale) {
  if (image_encoder_->dim() != attribute_encoder_->dim())
    throw std::invalid_argument(
        "ZscModel: image encoder dim " + std::to_string(image_encoder_->dim()) +
        " != attribute encoder dim " + std::to_string(attribute_encoder_->dim()));
}

Tensor ZscModel::attribute_logits(const Tensor& images, bool train) {
  auto* hdc_enc = dynamic_cast<HdcAttributeEncoder*>(attribute_encoder_.get());
  if (!hdc_enc)
    throw std::logic_error(
        "ZscModel::attribute_logits requires the HDC attribute encoder (the MLP "
        "variant skips phase II, as in Table II)");
  Tensor e = image_encoder_->forward(images, train);
  return attribute_kernel_.forward(e, hdc_enc->dictionary_tensor(), train);
}

void ZscModel::attribute_backward(const Tensor& grad_q) {
  auto grads = attribute_kernel_.backward(grad_q);
  image_encoder_->backward(grads.grad_e, backbone_grad_);
  // grads.grad_c would flow into the stationary dictionary — discarded.
}

Tensor ZscModel::class_logits(const Tensor& images, const Tensor& class_attributes,
                              bool train) {
  Tensor e = image_encoder_->forward(images, train);
  Tensor phi = attribute_encoder_->encode(class_attributes, train);
  if (train) cached_class_attributes_ = class_attributes;
  return class_kernel_.forward(e, phi, train);
}

void ZscModel::class_backward(const Tensor& grad_p) {
  auto grads = class_kernel_.backward(grad_p);
  image_encoder_->backward(grads.grad_e, backbone_grad_);
  if (attribute_encoder_->trainable()) attribute_encoder_->backward(grads.grad_c);
}

std::vector<Parameter*> ZscModel::parameters() {
  auto out = image_encoder_->parameters();
  auto pa = attribute_encoder_->parameters();
  out.insert(out.end(), pa.begin(), pa.end());
  out.push_back(&class_kernel_.log_scale());
  out.push_back(&attribute_kernel_.log_scale());
  return out;
}

std::size_t ZscModel::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

std::unique_ptr<ZscModel> make_zsc_model(const ZscModelConfig& cfg,
                                         const data::AttributeSpace& space, util::Rng& rng) {
  auto img = std::make_unique<ImageEncoder>(cfg.image, rng);
  const std::size_t d = img->dim();
  auto attr = make_attribute_encoder(cfg.attribute_encoder, space, d, cfg.mlp_hidden, rng);
  return std::make_unique<ZscModel>(std::move(img), std::move(attr), cfg.temp_scale);
}

}  // namespace hdczsc::core
