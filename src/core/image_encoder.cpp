#include "core/image_encoder.hpp"

namespace hdczsc::core {

ImageEncoder::ImageEncoder(const ImageEncoderConfig& cfg, util::Rng& rng)
    : backbone_(nn::make_backbone(cfg.arch, rng)) {
  if (cfg.use_projection)
    fc_ = std::make_unique<nn::Linear>(backbone_.feature_dim, cfg.proj_dim, rng);
}

Tensor ImageEncoder::forward(const Tensor& images, bool train) {
  Tensor h = backbone_.net->forward(images, train);
  if (fc_) h = fc_->forward(h, train);
  return h;
}

Tensor ImageEncoder::backward(const Tensor& grad_emb, bool through_backbone) {
  Tensor g = grad_emb;
  if (fc_) g = fc_->backward(g);
  if (!through_backbone) return g;
  return backbone_.net->backward(g);
}

std::size_t ImageEncoder::dim() const {
  return fc_ ? fc_->out_features() : backbone_.feature_dim;
}

std::vector<Parameter*> ImageEncoder::parameters() {
  auto out = backbone_.net->parameters();
  if (fc_) {
    auto ps = fc_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<Parameter*> ImageEncoder::projection_parameters() {
  return fc_ ? fc_->parameters() : std::vector<Parameter*>{};
}

void ImageEncoder::set_projection_frozen(bool frozen) {
  if (fc_) fc_->set_frozen(frozen);
}

}  // namespace hdczsc::core
