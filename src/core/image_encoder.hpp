// Image encoder γ(·): R^{3×S×S} → R^d — a ResNet backbone followed by an
// optional FC projection layer to the ZSC embedding dimension d (Fig. 2).
// Without the projection, γ outputs the raw backbone features (the
// "ResNet50, d=2048" rows of Table II, which also skip phase II).
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/resnet.hpp"

namespace hdczsc::core {

using nn::Parameter;
using nn::Tensor;

struct ImageEncoderConfig {
  /// Default is the CPU-scale flat-tail variant (32x32 inputs); the paper's
  /// "resnet50"/"resnet101" are also buildable (see DESIGN.md §1/§4).
  std::string arch = "resnet_micro_flat";
  /// Projection dimension d; ignored when use_projection == false (then
  /// d == backbone feature dim).
  std::size_t proj_dim = 256;
  bool use_projection = true;
};

class ImageEncoder {
 public:
  ImageEncoder(const ImageEncoderConfig& cfg, util::Rng& rng);

  /// Embeddings [B, d] from images [B, 3, S, S].
  Tensor forward(const Tensor& images, bool train);
  /// Backward from dL/d(embeddings); returns dL/d(images). When
  /// `through_backbone` is false only the projection FC receives gradients
  /// (phase III with a stationary backbone, Fig. 2c) and the return value
  /// is the gradient at the backbone output instead.
  Tensor backward(const Tensor& grad_emb, bool through_backbone = true);

  std::size_t dim() const;
  std::size_t backbone_feature_dim() const { return backbone_.feature_dim; }
  const std::string& arch() const { return backbone_.arch; }
  bool has_projection() const { return fc_ != nullptr; }

  /// All parameters (backbone + projection).
  std::vector<Parameter*> parameters();
  /// Non-trainable state (BatchNorm running statistics) — must be persisted
  /// with the parameters for checkpointed eval forwards to be bit-identical.
  std::vector<nn::BufferRef> buffers() { return backbone_.net->buffers(); }
  std::vector<Parameter*> backbone_parameters() { return backbone_.net->parameters(); }
  std::vector<Parameter*> projection_parameters();

  /// Freeze/unfreeze the backbone (phase III keeps it stationary).
  void set_backbone_frozen(bool frozen) { backbone_.net->set_frozen(frozen); }
  void set_projection_frozen(bool frozen);

  nn::Sequential& backbone() { return *backbone_.net; }
  /// Projection FC layer, or nullptr when use_projection == false (the
  /// quantizer walks backbone + projection as one embed graph).
  nn::Linear* projection() { return fc_.get(); }

 private:
  nn::Backbone backbone_;
  std::unique_ptr<nn::Linear> fc_;
};

}  // namespace hdczsc::core
