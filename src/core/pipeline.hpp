// End-to-end experiment pipeline: dataset + split + model + the phase
// schedule of Fig. 2, producing ZSC and attribute-extraction metrics. This
// is the single entry point used by the examples and every benchmark.
#pragma once

#include "core/trainer.hpp"
#include "data/splits.hpp"

namespace hdczsc::core {

struct PipelineConfig {
  // Dataset scale (CPU-scale defaults; see DESIGN.md §4).
  std::size_t n_classes = 200;
  std::size_t images_per_class = 12;  ///< split into train/test instance ranges
  std::size_t image_size = 32;
  std::size_t train_instances = 8;    ///< instances [0, train) train, [train, ipc) test

  // Split.
  std::string split = "zs";  ///< "zs" | "nozs" | "val"
  std::size_t zs_train_classes = 150;
  std::size_t nozs_classes = 100;
  std::size_t val_classes = 50;

  // Model.
  ZscModelConfig model;

  // Phase schedule (phase III always runs).
  bool run_phase1 = true;
  bool run_phase2 = true;
  bool freeze_backbone_phase3 = true;
  std::size_t pretrain_classes = 20;       ///< ShapesSynthetic classes for phase I
  std::size_t pretrain_images_per_class = 8;

  TrainConfig phase1;
  TrainConfig phase2;
  TrainConfig phase3;

  data::AugmentConfig augment;

  // Serving artifact: when non-empty, run_pipeline_trained freezes the
  // trained model + held-out class prototypes into a versioned .hdcsnap at
  // this path (serve::snapshot_io), so server fleets cold-start from the
  // file instead of retraining.
  std::string snapshot_path;
  std::size_t snapshot_expansion = 8;  ///< binary code width k·d of the artifact
  std::size_t snapshot_shards = 1;     ///< preferred scatter/gather shard layout
  // GZSL serving artifact: freeze the *joint* seen+unseen label space
  // instead of the unseen-only one — serving labels [0, n_seen) are the
  // training classes, the rest the held-out ones — with the partition
  // persisted as the .hdcsnap v3 seen-mask record, and hand back the
  // seen-domain eval artifacts (TrainedPipeline::seen_*) rendered from
  // the training classes' held-out instance range. Requires a class-level
  // split ("zs"/"val") with train_instances < images_per_class.
  bool snapshot_gzsl = false;

  std::uint64_t seed = 1;
  bool verbose = false;
};

struct PipelineResult {
  ZscEvalResult zsc;
  AttributeEvalResult attributes;  ///< populated when phase II ran
  bool has_attribute_metrics = false;
  double phase1_train_acc = 0.0;
  double phase2_final_loss = 0.0;
  double phase3_final_loss = 0.0;
  std::size_t trainable_parameters = 0;
  double train_seconds = 0.0;
};

/// Run the configured pipeline once with the given seed offset
/// (the paper's five-trials protocol calls this with seeds 0..4).
PipelineResult run_pipeline(const PipelineConfig& cfg, std::uint64_t seed_offset = 0);

/// Everything the serving layer needs to freeze a trained model: the model
/// itself plus the held-out classes' attribute rows (serving-label order)
/// and their rendered evaluation set.
struct TrainedPipeline {
  PipelineResult result;
  std::shared_ptr<ZscModel> model;
  tensor::Tensor test_class_attributes;     ///< A rows [C_test, α], local-label order
  data::Batch test_set;                     ///< rendered eval images + local labels
  std::vector<std::size_t> test_classes;    ///< global class ids, local-label order

  // GZSL artifacts, populated only under PipelineConfig::snapshot_gzsl:
  // the seen (training) classes' attribute rows and an eval set rendered
  // from their *held-out* instance range [train_instances, images_per_class)
  // — images the model never trained on, but classes it has. Joint serving
  // labels are seen-first: seen_set labels are already joint ids, test_set
  // labels shift by seen_class_attributes.size(0)
  // (serve::make_gzsl_snapshot uses the same order).
  tensor::Tensor seen_class_attributes;     ///< A rows [C_seen, α], local-label order
  data::Batch seen_set;                     ///< held-out-instance images of seen classes
  std::vector<std::size_t> seen_classes;    ///< global class ids, local-label order
};

/// Like run_pipeline, but hands back the trained model and the test-split
/// artifacts instead of discarding them — the input to serve::ModelSnapshot.
TrainedPipeline run_pipeline_trained(const PipelineConfig& cfg, std::uint64_t seed_offset = 0);

/// Joint GZSL evaluation set from a snapshot_gzsl-trained pipeline: the
/// seen-domain images (held-out instances of the training classes) followed
/// by the unseen-domain ones, labels in joint serving ids — seen classes
/// [0, C_seen) first, unseen shifted by C_seen, the exact label order
/// serve::make_gzsl_snapshot freezes. Throws std::logic_error when the
/// pipeline ran without snapshot_gzsl (no seen artifacts to join).
data::Batch joint_gzsl_eval_set(const TrainedPipeline& tp);

/// Run `n_seeds` trials and aggregate top-1 (mean, std) — the µ±σ protocol
/// of §IV-A(c).
struct MultiSeedResult {
  double top1_mean = 0.0, top1_std = 0.0;
  double top5_mean = 0.0, top5_std = 0.0;
  std::vector<PipelineResult> runs;
};
MultiSeedResult run_pipeline_seeds(const PipelineConfig& cfg, std::size_t n_seeds);

}  // namespace hdczsc::core
