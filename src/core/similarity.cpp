#include "core/similarity.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace hdczsc::core {

SimilarityKernel::SimilarityKernel(float init_scale) {
  if (init_scale <= 0.0f)
    throw std::invalid_argument("SimilarityKernel: init_scale must be positive");
  Tensor v({1});
  v[0] = std::log(init_scale);
  log_scale_ = Parameter(std::move(v), "similarity.log_scale");
}

float SimilarityKernel::scale() const { return std::exp(log_scale_.value[0]); }

Tensor SimilarityKernel::forward(const Tensor& e, const Tensor& c, bool train) {
  if (e.dim() != 2 || c.dim() != 2 || e.size(1) != c.size(1))
    throw std::invalid_argument("SimilarityKernel::forward: need [B,d] x [C,d], got " +
                                tensor::shape_str(e.shape()) + " and " +
                                tensor::shape_str(c.shape()));
  Tensor e_norms, c_norms;
  Tensor e_hat = tensor::l2_normalize_rows(e, &e_norms);
  Tensor c_hat = tensor::l2_normalize_rows(c, &c_norms);
  Tensor cos = tensor::matmul_nt(e_hat, c_hat);
  if (train) {
    e_hat_ = e_hat;
    c_hat_ = c_hat;
    e_norms_ = e_norms;
    c_norms_ = c_norms;
    cos_ = cos;
  }
  return tensor::mul_scalar(cos, scale());
}

SimilarityKernel::Grads SimilarityKernel::backward(const Tensor& grad_logits) {
  if (cos_.empty())
    throw std::logic_error("SimilarityKernel::backward called before forward(train=true)");
  if (grad_logits.shape() != cos_.shape())
    throw std::invalid_argument("SimilarityKernel::backward: grad shape mismatch");

  const float s = scale();
  const std::size_t batch = e_hat_.size(0), classes = c_hat_.size(0), d = e_hat_.size(1);

  // dL/dλ = s * sum(dP ∘ cos).
  {
    const float* G = grad_logits.data();
    const float* C = cos_.data();
    double acc = 0.0;
    for (std::size_t i = 0; i < grad_logits.numel(); ++i) acc += static_cast<double>(G[i]) * C[i];
    log_scale_.grad[0] += static_cast<float>(s * acc);
  }

  // dL/dÊ = s * dP * Ĉ ; dL/dĈ = s * dPᵀ * Ê.
  Tensor d_ehat = tensor::mul_scalar(tensor::matmul(grad_logits, c_hat_), s);      // [B, d]
  Tensor d_chat = tensor::mul_scalar(tensor::matmul_tn(grad_logits, e_hat_), s);   // [C, d]

  // Undo the row normalizations.
  auto denormalize = [d](const Tensor& d_hat, const Tensor& hat, const Tensor& norms) {
    Tensor out(d_hat.shape());
    const std::size_t rows = d_hat.size(0);
    const float* DH = d_hat.data();
    const float* H = hat.data();
    float* O = out.data();
    for (std::size_t i = 0; i < rows; ++i) {
      const float* dh = DH + i * d;
      const float* h = H + i * d;
      float* o = O + i * d;
      double dot = 0.0;
      for (std::size_t j = 0; j < d; ++j) dot += static_cast<double>(dh[j]) * h[j];
      const float n = norms[i] > 1e-12f ? norms[i] : 1.0f;
      const float inv = 1.0f / n;
      for (std::size_t j = 0; j < d; ++j)
        o[j] = (dh[j] - static_cast<float>(dot) * h[j]) * inv;
    }
    return out;
  };

  Grads g;
  g.grad_e = denormalize(d_ehat, e_hat_, e_norms_);
  g.grad_c = denormalize(d_chat, c_hat_, c_norms_);
  (void)batch;
  (void)classes;
  return g;
}

}  // namespace hdczsc::core
