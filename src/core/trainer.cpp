#include "core/trainer.hpp"

#include <numeric>

#include "nn/loss.hpp"
#include "optim/optimizer.hpp"
#include "optim/scheduler.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace hdczsc::core {

namespace {

/// Gather a batch of ShapesSynthetic samples into tensors.
struct ShapesBatch {
  Tensor images;
  std::vector<std::size_t> labels;
};

ShapesBatch gather_shapes(const data::ShapesSynthetic& ds,
                          const std::vector<std::pair<std::size_t, std::size_t>>& index,
                          const std::vector<std::size_t>& rows) {
  const std::size_t s = ds.image_size();
  const std::size_t elems = 3 * s * s;
  ShapesBatch b;
  b.images = Tensor({rows.size(), 3, s, s});
  b.labels.resize(rows.size());
  float* out = b.images.data();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto [cls, inst] = index[rows[k]];
    data::ShapesSample sample = ds.sample(cls, inst);
    const float* src = sample.image.data();
    for (std::size_t p = 0; p < elems; ++p) out[k * elems + p] = src[p];
    b.labels[k] = sample.label;
  }
  return b;
}

}  // namespace

double Trainer::phase1_pretrain(ImageEncoder& encoder, const data::ShapesSynthetic& dataset,
                                const TrainConfig& cfg) {
  // Temporary FC' head on the raw backbone features (Fig. 2a); the
  // projection FC is not part of phase I.
  util::Rng head_rng = rng_.split();
  nn::Linear head(encoder.backbone_feature_dim(), dataset.n_classes(), head_rng);

  auto params = encoder.backbone_parameters();
  for (auto* p : head.parameters()) params.push_back(p);
  optim::AdamW opt(params, cfg.lr, cfg.weight_decay);
  optim::CosineAnnealingLR sched(opt, static_cast<long>(cfg.epochs));

  std::vector<std::pair<std::size_t, std::size_t>> index;
  for (std::size_t c = 0; c < dataset.n_classes(); ++c)
    for (std::size_t i = 0; i < dataset.images_per_class(); ++i) index.emplace_back(c, i);
  std::vector<std::size_t> order(index.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double final_acc = 0.0;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng_.shuffle(order);
    std::size_t hits = 0, seen = 0;
    for (std::size_t start = 0; start < order.size(); start += cfg.batch_size) {
      const std::size_t end = std::min(order.size(), start + cfg.batch_size);
      std::vector<std::size_t> rows(order.begin() + static_cast<long>(start),
                                    order.begin() + static_cast<long>(end));
      ShapesBatch batch = gather_shapes(dataset, index, rows);

      Tensor feats = encoder.backbone().forward(batch.images, /*train=*/true);
      Tensor logits = head.forward(feats, /*train=*/true);
      auto loss = nn::cross_entropy(logits, batch.labels);

      opt.zero_grad();
      Tensor g = head.backward(loss.grad_logits);
      encoder.backbone().backward(g);
      opt.clip_grad_norm(cfg.clip_norm);
      opt.step();

      auto preds = tensor::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i)
        if (preds[i] == batch.labels[i]) ++hits;
      seen += preds.size();
    }
    sched.step();
    final_acc = seen == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(seen);
    if (cfg.verbose)
      util::log_info("phase I epoch ", epoch + 1, "/", cfg.epochs, " train acc ", final_acc);
  }
  return final_acc;
}

double Trainer::phase2_attribute_extraction(ZscModel& model, data::DataLoader& train,
                                            const TrainConfig& cfg) {
  // Positive weights from the train split's instance attributes (§III-A:
  // weighted BCE compensating inactive-attribute dominance).
  data::Batch stats = train.all_eval();
  Tensor pos_weight = nn::bce_pos_weights_from_targets(stats.instance_attributes);

  auto params = model.image_encoder().parameters();
  params.push_back(&model.attribute_kernel().log_scale());
  optim::AdamW opt(params, cfg.lr, cfg.weight_decay);
  optim::CosineAnnealingLR sched(opt, static_cast<long>(cfg.epochs));

  model.set_backbone_grad(true);
  double mean_loss = 0.0;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    train.reset_epoch();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (auto batch = train.next()) {
      Tensor q = model.attribute_logits(batch->images, /*train=*/true);
      auto loss = nn::weighted_bce_with_logits(q, batch->instance_attributes, pos_weight);
      opt.zero_grad();
      model.attribute_backward(loss.grad_logits);
      opt.clip_grad_norm(cfg.clip_norm);
      opt.step();
      loss_sum += loss.value;
      ++batches;
    }
    sched.step();
    mean_loss = batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    if (cfg.verbose)
      util::log_info("phase II epoch ", epoch + 1, "/", cfg.epochs, " loss ", mean_loss);
  }
  return mean_loss;
}

double Trainer::phase3_zsc(ZscModel& model, data::DataLoader& train, const TrainConfig& cfg,
                           bool freeze_backbone) {
  model.image_encoder().set_backbone_frozen(freeze_backbone);
  model.set_backbone_grad(!freeze_backbone);

  std::vector<nn::Parameter*> params;
  if (freeze_backbone) {
    params = model.image_encoder().projection_parameters();
    // Without a projection FC there is nothing left on the image side:
    // fall back to training the backbone (Table II "ResNet50, I,III" rows).
    if (params.empty()) {
      model.image_encoder().set_backbone_frozen(false);
      model.set_backbone_grad(true);
      params = model.image_encoder().parameters();
    }
  } else {
    params = model.image_encoder().parameters();
  }
  for (auto* p : model.attribute_encoder().parameters()) params.push_back(p);
  params.push_back(&model.class_kernel().log_scale());
  optim::AdamW opt(params, cfg.lr, cfg.weight_decay);
  optim::CosineAnnealingLR sched(opt, static_cast<long>(cfg.epochs));

  const Tensor class_attrs = train.class_attribute_rows();

  double mean_loss = 0.0;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    train.reset_epoch();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (auto batch = train.next()) {
      Tensor p = model.class_logits(batch->images, class_attrs, /*train=*/true);
      auto loss = nn::cross_entropy(p, batch->labels);
      opt.zero_grad();
      model.class_backward(loss.grad_logits);
      opt.clip_grad_norm(cfg.clip_norm);
      opt.step();
      loss_sum += loss.value;
      ++batches;
    }
    sched.step();
    mean_loss = batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    if (cfg.verbose)
      util::log_info("phase III epoch ", epoch + 1, "/", cfg.epochs, " loss ", mean_loss);
  }
  return mean_loss;
}

Tensor Trainer::encode_in_chunks(ImageEncoder& enc, const Tensor& images, std::size_t chunk) {
  const std::size_t n = images.size(0);
  const std::size_t c = images.size(1), h = images.size(2), w = images.size(3);
  const std::size_t elems = c * h * w;
  Tensor out({n, enc.dim()});
  const float* src = images.data();
  float* dst = out.data();
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t len = std::min(chunk, n - start);
    Tensor part({len, c, h, w});
    std::copy(src + start * elems, src + (start + len) * elems, part.data());
    Tensor emb = enc.forward(part, /*train=*/false);
    std::copy(emb.data(), emb.data() + len * enc.dim(), dst + start * enc.dim());
  }
  return out;
}

AttributeEvalResult Trainer::evaluate_attributes(ZscModel& model,
                                                 const data::DataLoader& test) {
  data::Batch batch = test.all_eval();
  Tensor e = encode_in_chunks(model.image_encoder(), batch.images);
  auto* hdc_enc = dynamic_cast<HdcAttributeEncoder*>(&model.attribute_encoder());
  if (!hdc_enc)
    throw std::logic_error("evaluate_attributes requires the HDC attribute encoder");
  Tensor q = model.attribute_kernel().forward(e, hdc_enc->dictionary_tensor(), false);

  AttributeEvalResult res;
  const data::AttributeSpace& sp = test.space();
  res.per_group_top1 = metrics::per_group_top1(q, batch.instance_attributes, sp);
  res.per_group_wmap = metrics::per_group_wmap(q, batch.instance_attributes, sp);
  res.mean_top1 = metrics::mean_of(res.per_group_top1);
  res.mean_wmap = metrics::mean_of(res.per_group_wmap);
  return res;
}

GzslEvalResult Trainer::evaluate_gzsl(ZscModel& model, const data::DataLoader& seen_test,
                                      const data::DataLoader& unseen_test,
                                      float seen_penalty) {
  // Joint descriptor matrix: seen rows then unseen rows.
  Tensor seen_a = seen_test.class_attribute_rows();
  Tensor unseen_a = unseen_test.class_attribute_rows();
  const std::size_t alpha = seen_a.size(1);
  const std::size_t n_seen = seen_a.size(0), n_unseen = unseen_a.size(0);
  Tensor joint({n_seen + n_unseen, alpha});
  std::copy(seen_a.data(), seen_a.data() + seen_a.numel(), joint.data());
  std::copy(unseen_a.data(), unseen_a.data() + unseen_a.numel(),
            joint.data() + seen_a.numel());
  Tensor phi = model.attribute_encoder().encode(joint, false);

  auto domain_acc = [&](const data::DataLoader& loader, std::size_t label_offset) {
    data::Batch batch = loader.all_eval();
    Tensor e = encode_in_chunks(model.image_encoder(), batch.images);
    Tensor p = model.class_kernel().forward(e, phi, false);
    if (seen_penalty != 0.0f) {
      // Calibrated stacking: handicap the seen-class columns.
      float* P = p.data();
      const std::size_t rows = p.size(0), cols = p.size(1);
      for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < n_seen && j < cols; ++j)
          P[i * cols + j] -= seen_penalty;
    }
    std::vector<std::size_t> labels = batch.labels;
    for (auto& l : labels) l += label_offset;
    return metrics::top1_accuracy(p, labels);
  };

  GzslEvalResult res;
  res.seen_acc = domain_acc(seen_test, 0);
  res.unseen_acc = domain_acc(unseen_test, n_seen);
  const double denom = res.seen_acc + res.unseen_acc;
  res.harmonic_mean = denom > 0.0 ? 2.0 * res.seen_acc * res.unseen_acc / denom : 0.0;
  return res;
}

ZscEvalResult Trainer::evaluate_zsc(ZscModel& model, const data::DataLoader& test) {
  data::Batch batch = test.all_eval();
  Tensor e = encode_in_chunks(model.image_encoder(), batch.images);
  Tensor phi = model.attribute_encoder().encode(test.class_attribute_rows(), false);
  Tensor p = model.class_kernel().forward(e, phi, false);

  ZscEvalResult res;
  res.top1 = metrics::top1_accuracy(p, batch.labels);
  res.top5 = metrics::topk_accuracy(p, batch.labels, 5);
  res.n_examples = batch.labels.size();
  return res;
}

}  // namespace hdczsc::core
