#include "core/pipeline.hpp"

#include <algorithm>

#include "serve/snapshot_io.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace hdczsc::core {

namespace {
/// Shared pipeline body; the serving artifacts (rendered eval set,
/// attribute rows) are only materialized when a caller keeps them.
TrainedPipeline run_impl(const PipelineConfig& cfg, std::uint64_t seed_offset,
                         bool serving_artifacts);
}  // namespace

PipelineResult run_pipeline(const PipelineConfig& cfg, std::uint64_t seed_offset) {
  return run_impl(cfg, seed_offset, /*serving_artifacts=*/false).result;
}

TrainedPipeline run_pipeline_trained(const PipelineConfig& cfg, std::uint64_t seed_offset) {
  return run_impl(cfg, seed_offset, /*serving_artifacts=*/true);
}

namespace {
TrainedPipeline run_impl(const PipelineConfig& cfg, std::uint64_t seed_offset,
                         bool serving_artifacts) {
  const std::uint64_t seed = cfg.seed + seed_offset * 0x10001ULL;
  util::Timer timer;

  // Dataset.
  data::AttributeSpace space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = cfg.n_classes;
  dcfg.images_per_class = cfg.images_per_class;
  dcfg.image_size = cfg.image_size;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);

  // Split.
  data::ClassSplit split;
  if (cfg.split == "zs") {
    split = data::make_zs_split(cfg.n_classes, cfg.zs_train_classes, seed);
  } else if (cfg.split == "nozs") {
    split = data::make_nozs_split(cfg.n_classes, cfg.nozs_classes, seed);
  } else if (cfg.split == "val") {
    auto zs = data::make_zs_split(cfg.n_classes, cfg.zs_train_classes, seed);
    split = data::make_validation_split(zs, cfg.val_classes, seed);
  } else {
    throw std::invalid_argument("run_pipeline: unknown split '" + cfg.split + "'");
  }

  // Loaders. For image-level (noZS) splits both loaders cover the same
  // classes with disjoint instance ranges; for class-level splits the test
  // loader uses held-out classes with the full instance range.
  const std::size_t ipc = cfg.images_per_class;
  const std::size_t train_hi = std::min(cfg.train_instances, ipc);
  data::DataLoader train(dataset, split.train_classes, 0, train_hi,
                         cfg.phase3.batch_size, /*shuffle=*/true, cfg.augment, seed + 11);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  data::DataLoader test(dataset, split.test_classes,
                        split.image_level ? train_hi : 0,
                        ipc,
                        cfg.phase3.batch_size, /*shuffle=*/false, no_aug, seed + 13);

  // Model.
  util::Rng model_rng(seed ^ 0xA0DE1ULL);
  std::shared_ptr<ZscModel> model = make_zsc_model(cfg.model, space, model_rng);

  Trainer trainer(seed);
  PipelineResult res;

  if (cfg.run_phase1) {
    data::ShapesSyntheticConfig scfg;
    scfg.n_classes = cfg.pretrain_classes;
    scfg.images_per_class = cfg.pretrain_images_per_class;
    scfg.image_size = cfg.image_size;
    scfg.seed = seed + 101;
    data::ShapesSynthetic pretrain(scfg);
    TrainConfig p1 = cfg.phase1;
    p1.verbose = cfg.verbose;
    res.phase1_train_acc = trainer.phase1_pretrain(model->image_encoder(), pretrain, p1);
  }

  const bool can_phase2 = cfg.model.attribute_encoder == "hdc" &&
                          model->image_encoder().has_projection();
  if (cfg.run_phase2 && can_phase2) {
    data::DataLoader p2_train(dataset, split.train_classes, 0, train_hi,
                              cfg.phase2.batch_size, true, cfg.augment, seed + 17);
    TrainConfig p2 = cfg.phase2;
    p2.verbose = cfg.verbose;
    res.phase2_final_loss = trainer.phase2_attribute_extraction(*model, p2_train, p2);
    res.attributes = trainer.evaluate_attributes(*model, test);
    res.has_attribute_metrics = true;
  }

  TrainConfig p3 = cfg.phase3;
  p3.verbose = cfg.verbose;
  res.phase3_final_loss =
      trainer.phase3_zsc(*model, train, p3, cfg.freeze_backbone_phase3);

  res.zsc = trainer.evaluate_zsc(*model, test);
  res.trainable_parameters = model->parameter_count();
  res.train_seconds = timer.seconds();
  if (cfg.verbose)
    util::log_info("pipeline done: top1=", res.zsc.top1, " top5=", res.zsc.top5,
                   " in ", res.train_seconds, " s");

  TrainedPipeline out;
  out.result = res;
  out.model = std::move(model);
  if (serving_artifacts) {
    out.test_class_attributes = test.class_attribute_rows();
    out.test_set = test.all_eval();
    out.test_classes = test.classes();
    if (cfg.snapshot_gzsl) {
      // Joint seen+unseen serving: the seen domain is evaluated on the
      // training classes' *held-out* instances — images the model never
      // saw, of classes it trained on (the GZSL protocol's seen side).
      if (split.image_level)
        throw std::invalid_argument(
            "run_pipeline: snapshot_gzsl needs a class-level split (zs/val); an "
            "image-level split has no unseen classes to partition against");
      if (train_hi >= ipc)
        throw std::invalid_argument(
            "run_pipeline: snapshot_gzsl needs held-out instances for the seen-domain "
            "eval set — train_instances must be < images_per_class");
      data::DataLoader seen_eval(dataset, split.train_classes, train_hi, ipc,
                                 cfg.phase3.batch_size, /*shuffle=*/false, no_aug, seed + 19);
      out.seen_class_attributes = seen_eval.class_attribute_rows();
      out.seen_set = seen_eval.all_eval();
      out.seen_classes = seen_eval.classes();
    }
    if (!cfg.snapshot_path.empty()) {
      if (cfg.snapshot_gzsl) {
        auto snap = serve::make_gzsl_snapshot(out.model, out.seen_class_attributes,
                                              out.test_class_attributes,
                                              cfg.snapshot_expansion, cfg.snapshot_shards);
        serve::save_snapshot_file(cfg.snapshot_path, *snap);
      } else {
        serve::ModelSnapshot snap(out.model, out.test_class_attributes,
                                  cfg.snapshot_expansion, cfg.snapshot_shards);
        serve::save_snapshot_file(cfg.snapshot_path, snap);
      }
      if (cfg.verbose)
        util::log_info("pipeline: wrote snapshot artifact ", cfg.snapshot_path);
    }
  }
  return out;
}
}  // namespace

data::Batch joint_gzsl_eval_set(const TrainedPipeline& tp) {
  if (tp.seen_class_attributes.dim() != 2 || tp.seen_set.images.dim() != 4)
    throw std::logic_error(
        "joint_gzsl_eval_set: pipeline was not run with snapshot_gzsl (no seen-domain "
        "artifacts)");
  const std::size_t n_seen_classes = tp.seen_class_attributes.size(0);
  const tensor::Tensor& seen = tp.seen_set.images;
  const tensor::Tensor& unseen = tp.test_set.images;
  data::Batch joint;
  joint.images = tensor::Tensor(
      {seen.size(0) + unseen.size(0), seen.size(1), seen.size(2), seen.size(3)});
  std::copy(seen.data(), seen.data() + seen.numel(), joint.images.data());
  std::copy(unseen.data(), unseen.data() + unseen.numel(),
            joint.images.data() + seen.numel());
  joint.labels = tp.seen_set.labels;
  for (std::size_t l : tp.test_set.labels) joint.labels.push_back(l + n_seen_classes);
  return joint;
}

MultiSeedResult run_pipeline_seeds(const PipelineConfig& cfg, std::size_t n_seeds) {
  MultiSeedResult out;
  std::vector<double> top1s, top5s;
  for (std::size_t s = 0; s < n_seeds; ++s) {
    out.runs.push_back(run_pipeline(cfg, s));
    top1s.push_back(out.runs.back().zsc.top1);
    top5s.push_back(out.runs.back().zsc.top5);
  }
  const auto m1 = tensor::mean_std(top1s);
  const auto m5 = tensor::mean_std(top5s);
  out.top1_mean = m1.mean;
  out.top1_std = m1.stddev;
  out.top5_mean = m5.mean;
  out.top5_std = m5.stddev;
  return out;
}

}  // namespace hdczsc::core
