// The three-phase training methodology of §III / Fig. 2:
//   Phase I   — backbone pre-training on a generic classification task
//               (ImageNet-1k in the paper; ShapesSynthetic here) through a
//               temporary FC' softmax head that is discarded afterwards.
//   Phase II  — attribute extraction: weighted BCE between the similarity
//               vector q = cossim(γ(x), B) and ground-truth instance
//               attributes; trains backbone + projection FC, dictionary
//               stays fixed.
//   Phase III — zero-shot classification: cross entropy on class logits
//               p = cossim(γ(x), ϕ(A)); backbone stationary (configurable),
//               projection FC + temperature (+ MLP encoder) update.
//
// All phases use AdamW with cosine-annealing LR, per §IV-A(c).
#pragma once

#include "core/zsc_model.hpp"
#include "data/dataloader.hpp"
#include "data/shapes_synthetic.hpp"
#include "metrics/attribute_metrics.hpp"
#include "metrics/classification.hpp"

namespace hdczsc::core {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  float lr = 1e-2f;
  float weight_decay = 1e-4f;
  float clip_norm = 5.0f;
  bool cosine_schedule = true;
  bool verbose = false;
};

struct AttributeEvalResult {
  std::vector<double> per_group_top1;  ///< [G], fraction in [0,1]
  std::vector<double> per_group_wmap;  ///< [G], in [0,1]
  double mean_top1 = 0.0;
  double mean_wmap = 0.0;
};

struct ZscEvalResult {
  double top1 = 0.0;
  double top5 = 0.0;
  std::size_t n_examples = 0;
};

/// Generalized ZSL (Xian et al. 2018, the evaluation protocol of the ZSL
/// literature the paper builds on): at inference the label space is the
/// union of seen and unseen classes; report per-domain accuracy and their
/// harmonic mean H = 2*S*U/(S+U).
struct GzslEvalResult {
  double seen_acc = 0.0;
  double unseen_acc = 0.0;
  double harmonic_mean = 0.0;
};

class Trainer {
 public:
  explicit Trainer(std::uint64_t seed) : rng_(seed ^ 0x7124A1AEULL) {}

  /// Phase I: returns final training accuracy of the temporary head.
  double phase1_pretrain(ImageEncoder& encoder, const data::ShapesSynthetic& dataset,
                         const TrainConfig& cfg);

  /// Phase II: returns final epoch's mean training loss.
  double phase2_attribute_extraction(ZscModel& model, data::DataLoader& train,
                                     const TrainConfig& cfg);

  /// Phase III: returns final epoch's mean training loss.
  /// `freeze_backbone` follows the paper (true); set false for the
  /// Table II rows without a projection FC, where the backbone itself
  /// must absorb the alignment.
  double phase3_zsc(ZscModel& model, data::DataLoader& train, const TrainConfig& cfg,
                    bool freeze_backbone = true);

  /// Attribute-extraction metrics (Table I) on a held-out loader.
  AttributeEvalResult evaluate_attributes(ZscModel& model, const data::DataLoader& test);

  /// ZSC metrics (top-1 / top-5) on a held-out loader of *unseen* classes.
  ZscEvalResult evaluate_zsc(ZscModel& model, const data::DataLoader& test);

  /// Generalized ZSL: classify both loaders' images against the *joint*
  /// class-attribute matrix (seen classes first, then unseen).
  /// `seen_penalty` implements calibrated stacking (Chao et al. 2016):
  /// the constant subtracted from every seen-class logit to counter the
  /// seen-class bias of non-generative models; 0 = plain GZSL.
  GzslEvalResult evaluate_gzsl(ZscModel& model, const data::DataLoader& seen_test,
                               const data::DataLoader& unseen_test,
                               float seen_penalty = 0.0f);

 private:
  util::Rng rng_;

  /// Forward images through the encoder in chunks (eval mode).
  static Tensor encode_in_chunks(ImageEncoder& enc, const Tensor& images,
                                 std::size_t chunk = 128);
};

}  // namespace hdczsc::core
