// The bi-similarity kernel of §III:
//
//   cossim(γ(X), ϕ(A)) = (1/K) · γ(X)ᵀϕ(A) / (||γ(X)|| ||ϕ(A)||)
//
// with learnable temperature-scaling parameter K. Internally the scale
// s = 1/K is parameterized as s = exp(λ) (a single learnable scalar, the
// CLIP logit-scale trick) so it stays positive under gradient updates.
//
// backward() propagates dL/dlogits to both embedding branches and to λ,
// differentiating through the row normalizations:
//   P = s · Ê Ĉᵀ,  dL/dÊ = s·dP·Ĉ,  dL/dĈ = s·dPᵀ·Ê,
//   dL/de_i = (dL/dê_i − (dL/dê_i·ê_i) ê_i) / ||e_i||   (same for c_j),
//   dL/dλ = s · Σ_ij dP_ij cos_ij.
#pragma once

#include "nn/layer.hpp"

namespace hdczsc::core {

using nn::Parameter;
using nn::Tensor;

class SimilarityKernel {
 public:
  /// `init_scale` is the initial s = 1/K (the paper sweeps this
  /// "temp scale" in Fig. 5 over {7e-4, 0.03, 0.7}).
  explicit SimilarityKernel(float init_scale = 0.03f);

  /// logits [B, C] from embeddings e [B, d] and class/attribute embeddings
  /// c [C, d]. Caches for backward when train=true.
  Tensor forward(const Tensor& e, const Tensor& c, bool train);

  struct Grads {
    Tensor grad_e;  ///< dL/de [B, d]
    Tensor grad_c;  ///< dL/dc [C, d]
  };
  /// Backward from dL/dlogits; also accumulates the temperature gradient.
  Grads backward(const Tensor& grad_logits);

  /// Current scale s = 1/K.
  float scale() const;
  /// Learnable parameter λ = log(s).
  Parameter& log_scale() { return log_scale_; }
  std::vector<Parameter*> parameters() { return {&log_scale_}; }

 private:
  Parameter log_scale_;
  // Caches from the last train-mode forward.
  Tensor e_hat_, c_hat_;    // normalized rows
  Tensor e_norms_, c_norms_;
  Tensor cos_;              // Ê Ĉᵀ
};

}  // namespace hdczsc::core
