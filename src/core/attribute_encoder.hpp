// Attribute encoders ϕ(·): Rᵅ → R^d (§III-A / §III-B).
//
//  * HdcAttributeEncoder — the paper's contribution: a *stationary* encoder
//    whose dictionary B ∈ {−1,+1}^{α×d} is materialized from two small
//    random codebooks (groups ⊙ values); ϕ(A) = A × B. It holds no
//    trainable parameters: backward() returns no gradients and the encoder
//    costs only (G+V)·d bits of storage.
//  * MlpAttributeEncoder — the "Trainable-MLP" ablation: a 2-layer MLP
//    applied row-wise to A, fully trainable.
#pragma once

#include <memory>

#include "data/attribute_space.hpp"
#include "hdc/codebook.hpp"
#include "nn/activation.hpp"
#include "nn/linear.hpp"

namespace hdczsc::core {

using nn::Parameter;
using nn::Tensor;

class AttributeEncoder {
 public:
  virtual ~AttributeEncoder() = default;

  /// ϕ(A): encode class-attribute rows A [C, α] into embeddings [C, d].
  virtual Tensor encode(const Tensor& a, bool train) = 0;
  /// Propagate dL/dϕ; accumulates parameter gradients if trainable.
  /// Returns dL/dA (usually unused; provided for completeness).
  virtual Tensor backward(const Tensor& grad_phi) = 0;

  virtual std::vector<Parameter*> parameters() { return {}; }
  virtual std::size_t dim() const = 0;
  virtual std::size_t n_attributes() const = 0;
  virtual std::string name() const = 0;
  virtual bool trainable() const { return false; }
};

/// HDC-based stationary attribute encoder (Fig. 1, gray module).
class HdcAttributeEncoder : public AttributeEncoder {
 public:
  HdcAttributeEncoder(const data::AttributeSpace& space, std::size_t dim, util::Rng& rng);

  Tensor encode(const Tensor& a, bool train) override;
  Tensor backward(const Tensor& grad_phi) override;
  std::size_t dim() const override { return dict_.dim(); }
  std::size_t n_attributes() const override { return dict_.n_attributes(); }
  std::string name() const override { return "hdc"; }

  /// The materialized dictionary B [α, d] (±1 floats), used directly as the
  /// similarity targets in the phase-II attribute-extraction task.
  const Tensor& dictionary_tensor() const { return dictionary_; }
  /// The factored (codebook) form behind B. Unavailable on snapshot-restored
  /// encoders (throws std::logic_error): only the materialized tensor is
  /// persisted, and handing out the placeholder codebooks would silently
  /// produce wrong HDC codes.
  const hdc::FactoredDictionary& dictionary() const;

  /// Replace the materialized dictionary (snapshot restore path): the
  /// dictionary is stationary but seed-derived, so a model rebuilt in a
  /// fresh process must adopt the saved B for ϕ(A) to reproduce. Shape must
  /// match [α, d]. After this call dictionary() refuses to hand out the now
  /// inconsistent factored form.
  void set_dictionary(Tensor b);

 private:
  hdc::FactoredDictionary dict_;
  Tensor dictionary_;       // cached B
  bool restored_ = false;   // B was adopted from a snapshot; dict_ is stale
};

/// Trainable 2-layer MLP attribute encoder (ablation of Table II / Fig. 4).
class MlpAttributeEncoder : public AttributeEncoder {
 public:
  MlpAttributeEncoder(std::size_t n_attributes, std::size_t hidden, std::size_t dim,
                      util::Rng& rng);

  Tensor encode(const Tensor& a, bool train) override;
  Tensor backward(const Tensor& grad_phi) override;
  std::vector<Parameter*> parameters() override;
  std::size_t dim() const override { return fc2_.out_features(); }
  std::size_t n_attributes() const override { return fc1_.in_features(); }
  std::size_t hidden() const { return fc1_.out_features(); }
  std::string name() const override { return "mlp"; }
  bool trainable() const override { return true; }

 private:
  nn::Linear fc1_;
  nn::ReLU relu_;
  nn::Linear fc2_;
};

/// Factory: "hdc" or "mlp".
std::unique_ptr<AttributeEncoder> make_attribute_encoder(const std::string& kind,
                                                         const data::AttributeSpace& space,
                                                         std::size_t dim, std::size_t mlp_hidden,
                                                         util::Rng& rng);

}  // namespace hdczsc::core
