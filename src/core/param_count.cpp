#include "core/param_count.hpp"

#include <stdexcept>

namespace hdczsc::core {

namespace {

std::size_t conv_params(std::size_t in_c, std::size_t out_c, std::size_t k) {
  return out_c * in_c * k * k;  // bias-free convs, as in the builders
}

std::size_t bn_params(std::size_t c) { return 2 * c; }  // gamma + beta

std::size_t basic_block_params(std::size_t in_c, std::size_t out_c, std::size_t stride) {
  std::size_t n = conv_params(in_c, out_c, 3) + bn_params(out_c) +
                  conv_params(out_c, out_c, 3) + bn_params(out_c);
  if (stride != 1 || in_c != out_c)
    n += conv_params(in_c, out_c, 1) + bn_params(out_c);
  return n;
}

std::size_t bottleneck_params(std::size_t in_c, std::size_t mid_c, std::size_t stride) {
  const std::size_t out_c = mid_c * 4;
  std::size_t n = conv_params(in_c, mid_c, 1) + bn_params(mid_c) +
                  conv_params(mid_c, mid_c, 3) + bn_params(mid_c) +
                  conv_params(mid_c, out_c, 1) + bn_params(out_c);
  if (stride != 1 || in_c != out_c)
    n += conv_params(in_c, out_c, 1) + bn_params(out_c);
  return n;
}

struct ArchSpec {
  bool bottleneck = false;
  std::size_t depths[4] = {0, 0, 0, 0};
  bool imagenet_stem = true;
  std::size_t mini_width = 0;  ///< nonzero -> CIFAR-style mini/micro layout
  std::size_t mini_blocks = 0;
  bool flat_tail = false;  ///< Flatten instead of GAP (8x8 grid at 32px)
};

ArchSpec spec_of(const std::string& arch) {
  if (arch == "resnet18") return {false, {2, 2, 2, 2}, true, 0, 0, false};
  if (arch == "resnet34") return {false, {3, 4, 6, 3}, true, 0, 0, false};
  if (arch == "resnet50") return {true, {3, 4, 6, 3}, true, 0, 0, false};
  if (arch == "resnet101") return {true, {3, 4, 23, 3}, true, 0, 0, false};
  if (arch == "resnet_mini" || arch == "mini") return {false, {0, 0, 0, 0}, false, 16, 2, false};
  if (arch == "resnet_mini_wide") return {false, {0, 0, 0, 0}, false, 24, 2, false};
  if (arch == "resnet_micro" || arch == "micro") return {false, {0, 0, 0, 0}, false, 8, 1, false};
  if (arch == "resnet_micro_flat" || arch == "micro_flat")
    return {false, {0, 0, 0, 0}, false, 8, 1, true};
  if (arch == "resnet_mini_flat" || arch == "mini_flat")
    return {false, {0, 0, 0, 0}, false, 16, 1, true};
  throw std::invalid_argument("param_count: unknown architecture '" + arch + "'");
}

}  // namespace

std::size_t backbone_feature_dim(const std::string& arch) {
  const ArchSpec s = spec_of(arch);
  if (s.mini_width != 0) {
    const std::size_t channels = s.mini_width * 4;  // 3 stages doubling width
    return s.flat_tail ? channels * 8 * 8 : channels;
  }
  return s.bottleneck ? 2048 : 512;
}

std::size_t backbone_param_count(const std::string& arch) {
  const ArchSpec s = spec_of(arch);
  std::size_t n = 0;
  if (s.mini_width != 0) {
    // CIFAR-style stem + 3 stages.
    n += conv_params(3, s.mini_width, 3) + bn_params(s.mini_width);
    std::size_t in_c = s.mini_width;
    for (int stage = 0; stage < 3; ++stage) {
      const std::size_t out_c = s.mini_width << stage;
      const std::size_t stride = stage == 0 ? 1 : 2;
      for (std::size_t blk = 0; blk < s.mini_blocks; ++blk) {
        n += basic_block_params(in_c, out_c, blk == 0 ? stride : 1);
        in_c = out_c;
      }
    }
    return n;
  }
  // ImageNet stem.
  n += conv_params(3, 64, 7) + bn_params(64);
  const std::size_t widths[4] = {64, 128, 256, 512};
  std::size_t in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::size_t stride = stage == 0 ? 1 : 2;
    for (std::size_t blk = 0; blk < s.depths[stage]; ++blk) {
      if (s.bottleneck) {
        n += bottleneck_params(in_c, widths[stage], blk == 0 ? stride : 1);
        in_c = widths[stage] * 4;
      } else {
        n += basic_block_params(in_c, widths[stage], blk == 0 ? stride : 1);
        in_c = widths[stage];
      }
    }
  }
  return n;
}

std::size_t image_encoder_param_count(const std::string& arch, std::size_t proj_dim,
                                      bool use_projection) {
  std::size_t n = backbone_param_count(arch);
  if (use_projection) n += backbone_feature_dim(arch) * proj_dim + proj_dim;  // W + bias
  return n;
}

std::size_t hdczsc_param_count(const std::string& arch, std::size_t proj_dim,
                               bool use_projection) {
  // + 2 learnable temperatures; the HDC dictionary is stationary.
  return image_encoder_param_count(arch, proj_dim, use_projection) + 2;
}

std::size_t mlp_zsc_param_count(const std::string& arch, std::size_t proj_dim,
                                bool use_projection, std::size_t alpha, std::size_t hidden) {
  const std::size_t d = use_projection ? proj_dim : backbone_feature_dim(arch);
  const std::size_t mlp = alpha * hidden + hidden + hidden * d + d;
  return image_encoder_param_count(arch, proj_dim, use_projection) + mlp + 2;
}

std::vector<Fig4Point> fig4_literature_points() {
  // Values read from Fig. 4 of the paper (accuracy %, parameter count in
  // millions). These are the literature baselines the paper compares to;
  // they are reprinted (source="paper"), not re-run.
  return {
      {"ESZSL [4]", 53.9, 45.8, false, "paper"},
      {"TCN [16]", 59.5, 49.2, false, "paper"},
      {"f-CLSWGAN [28]", 57.3, 52.5, true, "paper"},
      {"cycle-CLSWGAN [27]", 58.4, 54.0, true, "paper"},
      {"LisGAN [26]", 58.8, 56.0, true, "paper"},
      {"f-VAEGAN-D2 [25]", 61.0, 60.5, true, "paper"},
      {"ZSL_TF-VAEGAN [10]", 64.9, 64.0, true, "paper"},
      {"Composer [9]", 67.7, 68.5, true, "paper"},
      {"HDC-ZSC (ours)", 63.8, 26.6, false, "paper"},
      {"Trainable-MLP (ours)", 65.0, 27.3, false, "paper"},
  };
}

}  // namespace hdczsc::core
