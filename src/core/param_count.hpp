// Analytic parameter counting for the architectures in the paper, used by
// the Fig. 4 Pareto benchmark. Counting is done arithmetically (no weight
// allocation) so the paper-scale models (ResNet50/101 at 224x224) can be
// sized without paying their memory cost; tests cross-check the formulas
// against actually-built networks for the smaller variants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hdczsc::core {

/// Backbone parameter count (convs + batchnorms, no classifier head).
std::size_t backbone_param_count(const std::string& arch);

/// Image encoder: backbone (+ optional projection FC feature_dim -> d with
/// bias).
std::size_t image_encoder_param_count(const std::string& arch, std::size_t proj_dim,
                                      bool use_projection);

/// Backbone output feature dimensionality.
std::size_t backbone_feature_dim(const std::string& arch);

/// Trainable parameters of the full HDC-ZSC model at paper scale:
/// image encoder + 2 temperature scalars. The HDC attribute encoder
/// contributes zero trainable parameters (stationary codebooks).
std::size_t hdczsc_param_count(const std::string& arch, std::size_t proj_dim,
                               bool use_projection);

/// Trainable-MLP variant: adds the 2-layer MLP (α -> hidden -> d).
std::size_t mlp_zsc_param_count(const std::string& arch, std::size_t proj_dim,
                                bool use_projection, std::size_t alpha, std::size_t hidden);

/// A point on the Fig. 4 accuracy-vs-parameters plot.
struct Fig4Point {
  std::string name;
  double top1_percent = 0.0;      ///< CUB-200 ZS top-1 accuracy, %
  double params_millions = 0.0;   ///< total parameter count, millions
  bool generative = false;
  std::string source;             ///< "paper" (literature) or "measured"
};

/// The literature points the paper plots in Fig. 4 (reported, not re-run).
std::vector<Fig4Point> fig4_literature_points();

}  // namespace hdczsc::core
