// HDC-ZSC model (Fig. 1): image encoder γ, attribute encoder ϕ, and the
// bi-similarity kernel, wired for the two task heads:
//
//  * attribute logits  q = cossim(γ(x), B)          (phase II, Fig. 2b)
//  * class logits      p = cossim(γ(x), ϕ(A))       (phase III, Fig. 2c / 3)
//
// Each head has its own learnable temperature. Backward helpers route
// gradients to the image branch, the attribute branch (for the trainable
// MLP encoder) and the temperature.
#pragma once

#include "core/attribute_encoder.hpp"
#include "core/image_encoder.hpp"
#include "core/similarity.hpp"

namespace hdczsc::core {

class ZscModel {
 public:
  ZscModel(std::unique_ptr<ImageEncoder> image_encoder,
           std::unique_ptr<AttributeEncoder> attribute_encoder, float temp_scale);

  ImageEncoder& image_encoder() { return *image_encoder_; }
  AttributeEncoder& attribute_encoder() { return *attribute_encoder_; }
  SimilarityKernel& class_kernel() { return class_kernel_; }
  SimilarityKernel& attribute_kernel() { return attribute_kernel_; }
  std::size_t dim() const { return image_encoder_->dim(); }

  // -- phase II: attribute extraction -------------------------------------
  /// q [B, α]: similarities between image embeddings and the stationary
  /// attribute dictionary B. Only valid with the HDC encoder (the MLP
  /// variant has no dictionary; phase II is then skipped, as in Table II).
  Tensor attribute_logits(const Tensor& images, bool train);
  /// Backprop dL/dq into the image encoder and attribute temperature.
  void attribute_backward(const Tensor& grad_q);

  // -- phase III / inference: zero-shot classification --------------------
  /// p [B, C]: class logits against class-attribute rows A [C, α].
  Tensor class_logits(const Tensor& images, const Tensor& class_attributes, bool train);
  /// Backprop dL/dp into image encoder, attribute encoder (if trainable)
  /// and class temperature.
  void class_backward(const Tensor& grad_p);

  /// Parameters trainable in phase III: projection FC (+ backbone when not
  /// frozen), attribute-encoder parameters (MLP variant), temperature.
  std::vector<Parameter*> parameters();

  /// Non-trainable state tensors (the image backbone's BatchNorm running
  /// statistics); serialized alongside parameters() by serve::snapshot_io.
  std::vector<nn::BufferRef> buffers() { return image_encoder_->buffers(); }

  /// When disabled, backward passes stop at the projection FC (stationary
  /// backbone of Fig. 2c) — a large compute saving in phase III.
  void set_backbone_grad(bool enabled) { backbone_grad_ = enabled; }
  bool backbone_grad() const { return backbone_grad_; }

  /// Analytic total parameter count (trainable only).
  std::size_t parameter_count();

 private:
  std::unique_ptr<ImageEncoder> image_encoder_;
  std::unique_ptr<AttributeEncoder> attribute_encoder_;
  SimilarityKernel class_kernel_;
  SimilarityKernel attribute_kernel_;
  Tensor cached_class_attributes_;  // A rows used in the last class forward
  bool backbone_grad_ = true;
};

/// Convenience factory assembling the model from configs.
struct ZscModelConfig {
  ImageEncoderConfig image;
  std::string attribute_encoder = "hdc";  ///< "hdc" | "mlp"
  std::size_t mlp_hidden = 128;
  /// Initial 1/K. The paper's best CUB-scale value is 0.03 (Fig. 5); at the
  /// CPU scale of this reproduction (small batches, d=256) the useful
  /// operating point is higher — 4.0 by default, swept in bench_fig5.
  float temp_scale = 4.0f;
};

std::unique_ptr<ZscModel> make_zsc_model(const ZscModelConfig& cfg,
                                         const data::AttributeSpace& space, util::Rng& rng);

}  // namespace hdczsc::core
