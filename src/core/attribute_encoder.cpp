#include "core/attribute_encoder.hpp"

#include "tensor/ops.hpp"

namespace hdczsc::core {

HdcAttributeEncoder::HdcAttributeEncoder(const data::AttributeSpace& space, std::size_t dim,
                                         util::Rng& rng)
    : dict_(space.n_groups(), space.n_values(), space.hdc_pairs(), dim, rng),
      dictionary_(dict_.dictionary_tensor()) {}

Tensor HdcAttributeEncoder::encode(const Tensor& a, bool /*train*/) {
  if (a.dim() != 2 || a.size(1) != n_attributes())
    throw std::invalid_argument("HdcAttributeEncoder::encode: A must be [C, alpha], got " +
                                tensor::shape_str(a.shape()));
  return tensor::matmul(a, dictionary_);  // ϕ = A × B
}

const hdc::FactoredDictionary& HdcAttributeEncoder::dictionary() const {
  if (restored_)
    throw std::logic_error(
        "HdcAttributeEncoder::dictionary: the factored codebooks are not persisted in "
        "snapshots; only dictionary_tensor() is valid on a restored encoder");
  return dict_;
}

void HdcAttributeEncoder::set_dictionary(Tensor b) {
  if (b.dim() != 2 || b.size(0) != n_attributes() || b.size(1) != dim())
    throw std::invalid_argument("HdcAttributeEncoder::set_dictionary: expected [" +
                                std::to_string(n_attributes()) + ", " +
                                std::to_string(dim()) + "], got " +
                                tensor::shape_str(b.shape()));
  dictionary_ = std::move(b);
  restored_ = true;
}

Tensor HdcAttributeEncoder::backward(const Tensor& grad_phi) {
  // The dictionary is stationary; only dL/dA is defined: dA = dϕ · Bᵀ.
  return tensor::matmul_nt(grad_phi, dictionary_);
}

MlpAttributeEncoder::MlpAttributeEncoder(std::size_t n_attributes, std::size_t hidden,
                                         std::size_t dim, util::Rng& rng)
    : fc1_(n_attributes, hidden, rng), fc2_(hidden, dim, rng) {}

Tensor MlpAttributeEncoder::encode(const Tensor& a, bool train) {
  Tensor h = fc1_.forward(a, train);
  h = relu_.forward(h, train);
  return fc2_.forward(h, train);
}

Tensor MlpAttributeEncoder::backward(const Tensor& grad_phi) {
  Tensor g = fc2_.backward(grad_phi);
  g = relu_.backward(g);
  return fc1_.backward(g);
}

std::vector<Parameter*> MlpAttributeEncoder::parameters() {
  std::vector<Parameter*> out = fc1_.parameters();
  auto p2 = fc2_.parameters();
  out.insert(out.end(), p2.begin(), p2.end());
  return out;
}

std::unique_ptr<AttributeEncoder> make_attribute_encoder(const std::string& kind,
                                                         const data::AttributeSpace& space,
                                                         std::size_t dim, std::size_t mlp_hidden,
                                                         util::Rng& rng) {
  if (kind == "hdc") return std::make_unique<HdcAttributeEncoder>(space, dim, rng);
  if (kind == "mlp")
    return std::make_unique<MlpAttributeEncoder>(space.n_attributes(), mlp_hidden, dim, rng);
  throw std::invalid_argument("make_attribute_encoder: unknown kind '" + kind + "'");
}

}  // namespace hdczsc::core
