#include "data/splits.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace hdczsc::data {

ClassSplit make_zs_split(std::size_t n_classes, std::size_t n_train, std::uint64_t seed) {
  if (n_train > n_classes)
    throw std::invalid_argument("make_zs_split: n_train > n_classes");
  util::Rng rng(seed ^ 0x5A5A5A5AULL);
  auto perm = rng.permutation(n_classes);
  ClassSplit split;
  split.train_classes.assign(perm.begin(), perm.begin() + static_cast<long>(n_train));
  split.test_classes.assign(perm.begin() + static_cast<long>(n_train), perm.end());
  return split;
}

ClassSplit make_nozs_split(std::size_t n_classes, std::size_t n_selected, std::uint64_t seed) {
  if (n_selected > n_classes)
    throw std::invalid_argument("make_nozs_split: n_selected > n_classes");
  util::Rng rng(seed ^ 0xA0A0A0A0ULL);
  auto perm = rng.permutation(n_classes);
  ClassSplit split;
  split.train_classes.assign(perm.begin(), perm.begin() + static_cast<long>(n_selected));
  split.test_classes = split.train_classes;
  split.image_level = true;
  return split;
}

ClassSplit make_validation_split(const ClassSplit& zs, std::size_t n_val, std::uint64_t seed) {
  if (n_val > zs.train_classes.size())
    throw std::invalid_argument("make_validation_split: n_val > train classes");
  util::Rng rng(seed ^ 0x7E57ULL);
  auto classes = zs.train_classes;
  rng.shuffle(classes);
  ClassSplit split;
  split.test_classes.assign(classes.begin(), classes.begin() + static_cast<long>(n_val));
  split.train_classes.assign(classes.begin() + static_cast<long>(n_val), classes.end());
  return split;
}

}  // namespace hdczsc::data
