#include "data/shapes_synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hdczsc::data {

namespace {
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b + 0x100000001B3ULL;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

ShapesSynthetic::ShapesSynthetic(ShapesSyntheticConfig cfg) : cfg_(cfg) {
  if (cfg_.n_classes == 0) throw std::invalid_argument("ShapesSynthetic: n_classes must be > 0");
}

ShapesSample ShapesSynthetic::sample(std::size_t c, std::size_t i) const {
  if (c >= cfg_.n_classes) throw std::out_of_range("ShapesSynthetic::sample: class out of range");
  const std::size_t s = cfg_.image_size;
  util::Rng rng(mix(mix(cfg_.seed, c + 1), i + 1));

  // Class-determined pattern parameters (stable across instances).
  util::Rng class_rng(mix(cfg_.seed, 0x51AB0000u + c));
  const double angle = class_rng.uniform(0.0, std::numbers::pi);
  const double freq = class_rng.uniform(0.15, 0.9);
  const double phase_cls = class_rng.uniform(0.0, 2.0 * std::numbers::pi);
  float palette[3];
  for (auto& p : palette) p = static_cast<float>(class_rng.uniform(0.2, 1.0));
  const std::size_t style = static_cast<std::size_t>(class_rng.next_below(3));

  // Instance-level phase jitter (the "pose" of the object).
  const double phase = phase_cls + rng.uniform(-0.6, 0.6);
  const double ca = std::cos(angle), sa = std::sin(angle);

  ShapesSample out;
  out.label = c;
  out.image = tensor::Tensor({3, s, s});
  float* img = out.image.data();
  const std::size_t plane = s * s;
  for (std::size_t y = 0; y < s; ++y) {
    for (std::size_t x = 0; x < s; ++x) {
      const double u = ca * static_cast<double>(x) + sa * static_cast<double>(y);
      const double v = -sa * static_cast<double>(x) + ca * static_cast<double>(y);
      double t;
      switch (style) {
        case 0: t = std::sin(freq * u + phase); break;                       // stripes
        case 1: t = std::sin(freq * u + phase) * std::sin(freq * v); break;  // grid
        default: {
          const double cy = static_cast<double>(s) / 2.0;
          const double r = std::hypot(static_cast<double>(x) - cy,
                                      static_cast<double>(y) - cy);
          t = std::sin(freq * r + phase);  // rings
        }
      }
      const float base = 0.5f + 0.45f * static_cast<float>(t);
      const std::size_t idx = y * s + x;
      for (std::size_t ch = 0; ch < 3; ++ch) {
        float val = base * palette[ch] +
                    static_cast<float>(rng.normal(0.0, cfg_.pixel_noise));
        img[ch * plane + idx] = val < 0.0f ? 0.0f : (val > 1.0f ? 1.0f : val);
      }
    }
  }
  return out;
}

}  // namespace hdczsc::data
