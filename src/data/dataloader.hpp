// Mini-batch assembly over the synthetic datasets: materializes (class,
// instance) index lists for a split, shuffles per epoch, renders images on
// demand, and applies augmentation to training batches.
//
// Labels are *remapped to split-local ids* (0..C_split-1) so that the
// classifier heads and the class-attribute matrix rows line up.
#pragma once

#include <optional>

#include "data/augment.hpp"
#include "data/cub_synthetic.hpp"
#include "data/splits.hpp"

namespace hdczsc::data {

struct Batch {
  tensor::Tensor images;               ///< [B, 3, S, S]
  std::vector<std::size_t> labels;     ///< split-local class ids, size B
  tensor::Tensor instance_attributes;  ///< [B, α]
};

class DataLoader {
 public:
  /// `classes`: global class ids included in this loader (their order
  /// defines the local label mapping). `instance_lo/hi`: instance index
  /// range per class (hi exclusive) — used to realise the noZS image-level
  /// split and train/test instance partitions.
  DataLoader(const CubSynthetic& dataset, std::vector<std::size_t> classes,
             std::size_t instance_lo, std::size_t instance_hi, std::size_t batch_size,
             bool shuffle, AugmentConfig augment, std::uint64_t seed);

  std::size_t n_examples() const { return index_.size(); }
  std::size_t n_batches() const;
  std::size_t n_classes() const { return classes_.size(); }
  const std::vector<std::size_t>& classes() const { return classes_; }
  const AttributeSpace& space() const { return dataset_->space(); }

  /// Class attribute rows for this loader's classes, in local-label order.
  tensor::Tensor class_attribute_rows() const;

  /// Begin a new epoch (reshuffles when shuffle=true).
  void reset_epoch();
  /// Next batch, or nullopt at end of epoch.
  std::optional<Batch> next();

  /// Render every example once (no augmentation, no shuffling) — used for
  /// evaluation and feature extraction.
  Batch all_eval() const;

 private:
  const CubSynthetic* dataset_;
  std::vector<std::size_t> classes_;
  std::vector<std::pair<std::size_t, std::size_t>> index_;  // (global class, instance)
  std::vector<std::size_t> local_label_;                    // parallel to index_
  std::size_t batch_size_;
  bool shuffle_;
  AugmentConfig augment_;
  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;

  Batch make_batch(const std::vector<std::size_t>& rows, bool train) const;
};

}  // namespace hdczsc::data
