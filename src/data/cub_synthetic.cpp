#include "data/cub_synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace hdczsc::data {

namespace {

/// Stable 64-bit mix for deriving per-(class, instance) seeds.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b + 0x100000001B3ULL;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

/// Deterministic base colour for a global value id (spread over RGB space).
void value_color(std::size_t value_id, float rgb[3]) {
  std::uint64_t h = mix(0xC0FFEE, value_id);
  rgb[0] = 0.15f + 0.7f * static_cast<float>((h >> 0) & 0xFF) / 255.0f;
  rgb[1] = 0.15f + 0.7f * static_cast<float>((h >> 8) & 0xFF) / 255.0f;
  rgb[2] = 0.15f + 0.7f * static_cast<float>((h >> 16) & 0xFF) / 255.0f;
}

}  // namespace

CubSynthetic::CubSynthetic(const AttributeSpace& space, CubSyntheticConfig cfg)
    : space_(&space), cfg_(cfg) {
  if (cfg_.n_classes == 0) throw std::invalid_argument("CubSynthetic: n_classes must be > 0");
  if (cfg_.image_size < 8) throw std::invalid_argument("CubSynthetic: image_size too small");
  build_classes();
}

void CubSynthetic::build_classes() {
  const std::size_t c_count = cfg_.n_classes;
  const std::size_t g_count = space_->n_groups();
  const std::size_t alpha = space_->n_attributes();
  class_attributes_ = tensor::Tensor({c_count, alpha});
  dominant_.assign(c_count, std::vector<std::size_t>(g_count, 0));

  util::Rng rng(mix(cfg_.seed, 0xA77Bu));
  float* A = class_attributes_.data();
  for (std::size_t c = 0; c < c_count; ++c) {
    for (std::size_t g = 0; g < g_count; ++g) {
      const AttributeGroup& grp = space_->group(g);
      const std::size_t n_vals = grp.value_ids.size();
      const std::size_t dom = static_cast<std::size_t>(rng.next_below(n_vals));
      dominant_[c][g] = dom;
      // Optional secondary value (annotator disagreement / true variation).
      std::size_t sec = dom;
      if (n_vals > 1 && rng.bernoulli(cfg_.secondary_value_prob)) {
        do {
          sec = static_cast<std::size_t>(rng.next_below(n_vals));
        } while (sec == dom);
      }
      for (std::size_t k = 0; k < n_vals; ++k) {
        double strength;
        if (k == dom) strength = rng.uniform(0.7, 1.0);
        else if (k == sec && sec != dom) strength = rng.uniform(0.15, 0.35);
        else strength = rng.uniform(0.0, cfg_.annotator_noise);
        A[c * alpha + grp.attr_offset + k] = static_cast<float>(strength);
      }
    }
  }
}

tensor::Tensor CubSynthetic::class_attribute_rows(
    const std::vector<std::size_t>& classes) const {
  const std::size_t alpha = space_->n_attributes();
  tensor::Tensor out({classes.size(), alpha});
  const float* A = class_attributes_.data();
  float* O = out.data();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i] >= cfg_.n_classes)
      throw std::out_of_range("CubSynthetic::class_attribute_rows: class id out of range");
    for (std::size_t j = 0; j < alpha; ++j) O[i * alpha + j] = A[classes[i] * alpha + j];
  }
  return out;
}

std::size_t CubSynthetic::dominant_value(std::size_t c, std::size_t g) const {
  return dominant_.at(c).at(g);
}

Sample CubSynthetic::sample(std::size_t c, std::size_t i) const {
  if (c >= cfg_.n_classes) throw std::out_of_range("CubSynthetic::sample: class out of range");
  const std::size_t s = cfg_.image_size;
  const std::size_t g_count = space_->n_groups();
  const std::size_t alpha = space_->n_attributes();
  util::Rng rng(mix(mix(cfg_.seed, c + 1), i + 1));

  Sample out;
  out.label = c;
  out.instance_attributes = tensor::Tensor({alpha});
  out.image = tensor::Tensor({3, s, s});

  // Instance-level value per group: dominant, occasionally flipped to a
  // random alternative (mimicking per-image attribute variation in CUB).
  std::vector<std::size_t> active(g_count);
  for (std::size_t g = 0; g < g_count; ++g) {
    const AttributeGroup& grp = space_->group(g);
    std::size_t v = dominant_[c][g];
    if (grp.value_ids.size() > 1 && rng.bernoulli(cfg_.instance_flip_prob))
      v = static_cast<std::size_t>(rng.next_below(grp.value_ids.size()));
    active[g] = v;
    out.instance_attributes[grp.attr_offset + v] = 1.0f;
  }

  // Layout: groups own cells of a ceil-sqrt grid covering the image.
  std::size_t grid = 1;
  while (grid * grid < g_count) ++grid;
  const float cell = static_cast<float>(s) / static_cast<float>(grid);

  // Small global pose shift (same for all cells, like a translated bird).
  const int shift_y = static_cast<int>(rng.next_below(3)) - 1;
  const int shift_x = static_cast<int>(rng.next_below(3)) - 1;
  const float brightness =
      1.0f + static_cast<float>(rng.uniform(-cfg_.jitter, cfg_.jitter));

  float* img = out.image.data();
  const std::size_t plane = s * s;
  // Neutral background.
  for (std::size_t p = 0; p < 3 * plane; ++p) img[p] = 0.35f;

  for (std::size_t g = 0; g < g_count; ++g) {
    const AttributeGroup& grp = space_->group(g);
    const std::size_t value_id = grp.value_ids[active[g]];
    float rgb[3];
    value_color(value_id, rgb);
    // Texture style derived from the value id: 0 solid, 1 h-stripes,
    // 2 v-stripes, 3 checker.
    const std::size_t texture = mix(0xBEEF, value_id) % 4;

    const std::size_t gy = g / grid, gx = g % grid;
    const int y0 = static_cast<int>(static_cast<float>(gy) * cell) + shift_y;
    const int x0 = static_cast<int>(static_cast<float>(gx) * cell) + shift_x;
    const int y1 = static_cast<int>(static_cast<float>(gy + 1) * cell) + shift_y;
    const int x1 = static_cast<int>(static_cast<float>(gx + 1) * cell) + shift_x;
    for (int y = y0; y < y1; ++y) {
      if (y < 0 || y >= static_cast<int>(s)) continue;
      for (int x = x0; x < x1; ++x) {
        if (x < 0 || x >= static_cast<int>(s)) continue;
        float mod = 1.0f;
        switch (texture) {
          case 1: mod = (y / 2) % 2 == 0 ? 1.0f : 0.55f; break;
          case 2: mod = (x / 2) % 2 == 0 ? 1.0f : 0.55f; break;
          case 3: mod = ((x / 2) + (y / 2)) % 2 == 0 ? 1.0f : 0.55f; break;
          default: break;
        }
        const std::size_t idx = static_cast<std::size_t>(y) * s + static_cast<std::size_t>(x);
        for (std::size_t ch = 0; ch < 3; ++ch) img[ch * plane + idx] = rgb[ch] * mod;
      }
    }
  }

  // Global jitter + pixel noise, clamped to [0, 1].
  for (std::size_t p = 0; p < 3 * plane; ++p) {
    float v = img[p] * brightness +
              static_cast<float>(rng.normal(0.0, cfg_.pixel_noise));
    img[p] = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
  }
  return out;
}

}  // namespace hdczsc::data
