#include "data/dataloader.hpp"

#include <numeric>
#include <stdexcept>

namespace hdczsc::data {

DataLoader::DataLoader(const CubSynthetic& dataset, std::vector<std::size_t> classes,
                       std::size_t instance_lo, std::size_t instance_hi,
                       std::size_t batch_size, bool shuffle, AugmentConfig augment,
                       std::uint64_t seed)
    : dataset_(&dataset), classes_(std::move(classes)), batch_size_(batch_size),
      shuffle_(shuffle), augment_(augment), rng_(seed ^ 0xDA7A10ADULL) {
  if (batch_size_ == 0) throw std::invalid_argument("DataLoader: batch_size must be > 0");
  if (instance_hi > dataset.images_per_class())
    throw std::invalid_argument("DataLoader: instance range exceeds images_per_class");
  if (instance_lo >= instance_hi)
    throw std::invalid_argument("DataLoader: empty instance range");
  for (std::size_t local = 0; local < classes_.size(); ++local) {
    for (std::size_t i = instance_lo; i < instance_hi; ++i) {
      index_.emplace_back(classes_[local], i);
      local_label_.push_back(local);
    }
  }
  order_.resize(index_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  reset_epoch();
}

std::size_t DataLoader::n_batches() const {
  return (index_.size() + batch_size_ - 1) / batch_size_;
}

tensor::Tensor DataLoader::class_attribute_rows() const {
  return dataset_->class_attribute_rows(classes_);
}

void DataLoader::reset_epoch() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

Batch DataLoader::make_batch(const std::vector<std::size_t>& rows, bool train) const {
  const std::size_t s = dataset_->image_size();
  const std::size_t alpha = dataset_->space().n_attributes();
  Batch b;
  b.images = tensor::Tensor({rows.size(), 3, s, s});
  b.instance_attributes = tensor::Tensor({rows.size(), alpha});
  b.labels.resize(rows.size());
  float* imgs = b.images.data();
  float* attrs = b.instance_attributes.data();
  const std::size_t img_elems = 3 * s * s;
  // rng_ is only touched for augmentation; render itself is deterministic.
  util::Rng* aug_rng = const_cast<util::Rng*>(&rng_);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto [cls, inst] = index_[rows[k]];
    Sample sample = dataset_->sample(cls, inst);
    tensor::Tensor img = (train && augment_.enabled)
                             ? augment_image(sample.image, *aug_rng, augment_)
                             : sample.image;
    const float* I = img.data();
    for (std::size_t p = 0; p < img_elems; ++p) imgs[k * img_elems + p] = I[p];
    const float* A = sample.instance_attributes.data();
    for (std::size_t a = 0; a < alpha; ++a) attrs[k * alpha + a] = A[a];
    b.labels[k] = local_label_[rows[k]];
  }
  return b;
}

std::optional<Batch> DataLoader::next() {
  if (cursor_ >= order_.size()) return std::nullopt;
  const std::size_t end = std::min(order_.size(), cursor_ + batch_size_);
  std::vector<std::size_t> rows(order_.begin() + static_cast<long>(cursor_),
                                order_.begin() + static_cast<long>(end));
  cursor_ = end;
  return make_batch(rows, /*train=*/true);
}

Batch DataLoader::all_eval() const {
  std::vector<std::size_t> rows(index_.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return make_batch(rows, /*train=*/false);
}

}  // namespace hdczsc::data
