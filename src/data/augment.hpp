// Training-time image augmentation matching §IV-A: random rotation in
// [-45°, +45°], center crop (with zoom-back), and random horizontal flip.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hdczsc::data {

struct AugmentConfig {
  double max_rotation_deg = 45.0;
  double crop_fraction = 0.9;   ///< center crop keeps this fraction, then rescales
  double hflip_prob = 0.5;
  bool enabled = true;
};

/// Rotate a [3,S,S] image by `deg` degrees around its center
/// (nearest-neighbor; out-of-bounds pixels take the border value).
tensor::Tensor rotate_image(const tensor::Tensor& img, double deg);

/// Horizontal mirror of a [3,S,S] image.
tensor::Tensor hflip_image(const tensor::Tensor& img);

/// Center-crop to `fraction` of the side then rescale back to S
/// (nearest-neighbor).
tensor::Tensor center_crop_zoom(const tensor::Tensor& img, double fraction);

/// Full random augmentation pipeline.
tensor::Tensor augment_image(const tensor::Tensor& img, util::Rng& rng,
                             const AugmentConfig& cfg);

}  // namespace hdczsc::data
