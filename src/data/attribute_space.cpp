#include "data/attribute_space.hpp"

#include <stdexcept>

namespace hdczsc::data {

namespace {

// Global value vocabulary (61 entries). Index ranges:
//   0..14  colors, 15..18 patterns, 19..27 bill shapes, 28..33 tail shapes,
//   34..38 head-pattern-specific, 39..41 bill lengths, 42..46 sizes,
//   47..60 body shapes.
const char* kValueNames[] = {
    // colors (15)
    "blue", "brown", "iridescent", "purple", "rufous", "grey", "yellow", "olive", "green",
    "pink", "orange", "black", "white", "red", "buff",
    // patterns (4)
    "solid", "spotted", "striped", "multi-colored",
    // bill shapes (9)
    "curved", "dagger", "hooked", "needle", "hooked-seabird", "spatulate", "all-purpose",
    "cone", "specialized",
    // tail shapes (6)
    "forked", "rounded", "notched", "fan-shaped", "pointed", "squared",
    // head-pattern specific (5)
    "crested", "masked", "capped", "eyebrow", "plain",
    // bill lengths (3)
    "shorter-than-head", "same-as-head", "longer-than-head",
    // sizes (5)
    "very-small", "small", "medium", "large", "very-large",
    // body shapes (14)
    "upright-perching", "chicken-like", "long-legged", "duck-like", "owl-like", "gull-like",
    "hummingbird-like", "pigeon-like", "tree-clinging", "hawk-like", "sandpiper-like",
    "upland-ground", "swallow-like", "perching-like"};

std::vector<std::size_t> range_ids(std::size_t lo, std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = lo + i;
  return ids;
}

}  // namespace

void AttributeSpace::finalize() {
  n_attributes_ = 0;
  attr_group_.clear();
  attr_value_.clear();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    groups_[g].attr_offset = n_attributes_;
    for (std::size_t v : groups_[g].value_ids) {
      attr_group_.push_back(g);
      attr_value_.push_back(v);
      ++n_attributes_;
    }
  }
}

AttributeSpace AttributeSpace::cub() {
  AttributeSpace s;
  s.value_names_.assign(std::begin(kValueNames), std::end(kValueNames));

  const auto colors = range_ids(0, 15);
  const auto colors14 = range_ids(0, 14);  // eye color: 14 of the 15 colors
  const auto patterns = range_ids(15, 4);
  const auto bills = range_ids(19, 9);
  const auto tails = range_ids(28, 6);
  // head pattern: 4 patterns + 5 head-specific + rounded/pointed = 11 values
  std::vector<std::size_t> head = patterns;
  for (std::size_t v : range_ids(34, 5)) head.push_back(v);
  head.push_back(29);  // rounded
  head.push_back(32);  // pointed
  // wing shape: 5 shared tail-shape values
  const std::vector<std::size_t> wing_shape = {29, 32, 28, 30, 33};
  const auto bill_len = range_ids(39, 3);
  const auto sizes = range_ids(42, 5);
  const auto shapes = range_ids(47, 14);

  // Order matches the paper's Table I rows.
  s.groups_ = {
      {"bill shape", bills, 0},
      {"wing color", colors, 0},
      {"upperpart color", colors, 0},
      {"underpart color", colors, 0},
      {"breast pattern", patterns, 0},
      {"back color", colors, 0},
      {"tail shape", tails, 0},
      {"uppertail color", colors, 0},
      {"head pattern", head, 0},
      {"breast color", colors, 0},
      {"throat color", colors, 0},
      {"eye color", colors14, 0},
      {"bill length", bill_len, 0},
      {"forehead color", colors, 0},
      {"tail color", colors, 0},
      {"nape color", colors, 0},
      {"belly color", colors, 0},
      {"wing shape", wing_shape, 0},
      {"size", sizes, 0},
      {"shape", shapes, 0},
      {"back pattern", patterns, 0},
      {"tail pattern", patterns, 0},
      {"belly pattern", patterns, 0},
      {"primary color", colors, 0},
      {"leg color", colors, 0},
      {"bill color", colors, 0},
      {"crown color", colors, 0},
      {"wing pattern", patterns, 0},
  };
  s.finalize();
  return s;
}

AttributeSpace AttributeSpace::toy(std::size_t n_groups, std::size_t values_per_group,
                                   std::size_t n_values) {
  if (values_per_group > n_values)
    throw std::invalid_argument("AttributeSpace::toy: values_per_group > n_values");
  AttributeSpace s;
  s.value_names_.reserve(n_values);
  for (std::size_t v = 0; v < n_values; ++v) s.value_names_.push_back("v" + std::to_string(v));
  s.groups_.reserve(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    AttributeGroup grp;
    grp.name = "g" + std::to_string(g);
    for (std::size_t k = 0; k < values_per_group; ++k)
      grp.value_ids.push_back((g * 3 + k) % n_values);  // deterministic overlap across groups
    s.groups_.push_back(std::move(grp));
  }
  s.finalize();
  return s;
}

std::size_t AttributeSpace::group_of(std::size_t x) const {
  if (x >= n_attributes_) throw std::out_of_range("AttributeSpace::group_of");
  return attr_group_[x];
}

std::size_t AttributeSpace::value_of(std::size_t x) const {
  if (x >= n_attributes_) throw std::out_of_range("AttributeSpace::value_of");
  return attr_value_[x];
}

std::size_t AttributeSpace::attribute_index(std::size_t g, std::size_t k) const {
  const AttributeGroup& grp = groups_.at(g);
  if (k >= grp.value_ids.size()) throw std::out_of_range("AttributeSpace::attribute_index");
  return grp.attr_offset + k;
}

std::vector<hdc::GroupValuePair> AttributeSpace::hdc_pairs() const {
  std::vector<hdc::GroupValuePair> pairs;
  pairs.reserve(n_attributes_);
  for (std::size_t x = 0; x < n_attributes_; ++x)
    pairs.push_back({attr_group_[x], attr_value_[x]});
  return pairs;
}

}  // namespace hdczsc::data
