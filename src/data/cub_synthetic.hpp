// Procedural fine-grained dataset standing in for CUB-200-2011 (see
// DESIGN.md §1 for the substitution rationale).
//
// Each class is a point in attribute space: per attribute group it has a
// dominant value (plus annotator noise), giving a continuous class-attribute
// matrix A ∈ [0,1]^{C×α} like CUB's percent-of-annotators attributes.
// An image is rendered from the *instance-level* attribute assignment:
// every group owns a spatial cell of the image, painted with the active
// value's colour and texture, under pixel noise, global jitter and pose
// shifts. The mapping image → attributes is therefore local, learnable, and
// noisy — the properties phase-II / phase-III training actually exercises.
#pragma once

#include "data/attribute_space.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hdczsc::data {

struct CubSyntheticConfig {
  std::size_t n_classes = 200;
  std::size_t images_per_class = 30;
  std::size_t image_size = 32;         ///< square, 3 channels
  double secondary_value_prob = 0.25;  ///< class has a secondary value in a group
  double annotator_noise = 0.05;       ///< uniform noise on class attribute strengths
  double instance_flip_prob = 0.08;    ///< instance deviates from class dominant value
  double pixel_noise = 0.08;           ///< Gaussian sigma added to pixels
  double jitter = 0.15;                ///< brightness/contrast jitter amplitude
  std::uint64_t seed = 1;
};

/// One rendered example.
struct Sample {
  tensor::Tensor image;                ///< [3, S, S] in [0, 1] (before augmentation)
  std::size_t label = 0;               ///< class id
  tensor::Tensor instance_attributes;  ///< [α] binary instance-level attributes
};

class CubSynthetic {
 public:
  CubSynthetic(const AttributeSpace& space, CubSyntheticConfig cfg);

  const AttributeSpace& space() const { return *space_; }
  const CubSyntheticConfig& config() const { return cfg_; }
  std::size_t n_classes() const { return cfg_.n_classes; }
  std::size_t images_per_class() const { return cfg_.images_per_class; }
  std::size_t image_size() const { return cfg_.image_size; }

  /// Continuous class-attribute matrix A [C, α] in [0, 1] — the auxiliary
  /// descriptor fed to the attribute encoder.
  const tensor::Tensor& class_attribute_matrix() const { return class_attributes_; }

  /// Rows of A for a subset of classes -> [|subset|, α].
  tensor::Tensor class_attribute_rows(const std::vector<std::size_t>& classes) const;

  /// Dominant value (index within group g's value list) for class c.
  std::size_t dominant_value(std::size_t c, std::size_t g) const;

  /// Deterministically render instance `i` of class `c` (same (c, i) always
  /// yields the same image and instance attributes).
  Sample sample(std::size_t c, std::size_t i) const;

 private:
  const AttributeSpace* space_;
  CubSyntheticConfig cfg_;
  tensor::Tensor class_attributes_;                  // [C, α]
  std::vector<std::vector<std::size_t>> dominant_;   // [C][G] value index within group

  void build_classes();
};

}  // namespace hdczsc::data
