#include "data/augment.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hdczsc::data {

namespace {
void check_chw(const tensor::Tensor& img) {
  if (img.dim() != 3 || img.size(0) != 3 || img.size(1) != img.size(2))
    throw std::invalid_argument("augment: expected square [3,S,S] image, got " +
                                tensor::shape_str(img.shape()));
}
}  // namespace

tensor::Tensor rotate_image(const tensor::Tensor& img, double deg) {
  check_chw(img);
  const std::size_t s = img.size(1);
  const double rad = deg * std::numbers::pi / 180.0;
  const double ca = std::cos(rad), sa = std::sin(rad);
  const double cy = (static_cast<double>(s) - 1.0) / 2.0;

  tensor::Tensor out(img.shape());
  const float* I = img.data();
  float* O = out.data();
  const std::size_t plane = s * s;
  for (std::size_t y = 0; y < s; ++y) {
    for (std::size_t x = 0; x < s; ++x) {
      // Inverse mapping: output pixel samples from the rotated source.
      const double dx = static_cast<double>(x) - cy;
      const double dy = static_cast<double>(y) - cy;
      long sx = std::lround(ca * dx + sa * dy + cy);
      long sy = std::lround(-sa * dx + ca * dy + cy);
      if (sx < 0) sx = 0;
      if (sy < 0) sy = 0;
      if (sx >= static_cast<long>(s)) sx = static_cast<long>(s) - 1;
      if (sy >= static_cast<long>(s)) sy = static_cast<long>(s) - 1;
      const std::size_t src = static_cast<std::size_t>(sy) * s + static_cast<std::size_t>(sx);
      const std::size_t dst = y * s + x;
      for (std::size_t c = 0; c < 3; ++c) O[c * plane + dst] = I[c * plane + src];
    }
  }
  return out;
}

tensor::Tensor hflip_image(const tensor::Tensor& img) {
  check_chw(img);
  const std::size_t s = img.size(1);
  tensor::Tensor out(img.shape());
  const float* I = img.data();
  float* O = out.data();
  const std::size_t plane = s * s;
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t y = 0; y < s; ++y)
      for (std::size_t x = 0; x < s; ++x)
        O[c * plane + y * s + x] = I[c * plane + y * s + (s - 1 - x)];
  return out;
}

tensor::Tensor center_crop_zoom(const tensor::Tensor& img, double fraction) {
  check_chw(img);
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("center_crop_zoom: fraction must be in (0, 1]");
  const std::size_t s = img.size(1);
  const std::size_t crop = std::max<std::size_t>(1, static_cast<std::size_t>(
                                                        std::lround(fraction * static_cast<double>(s))));
  const std::size_t off = (s - crop) / 2;
  tensor::Tensor out(img.shape());
  const float* I = img.data();
  float* O = out.data();
  const std::size_t plane = s * s;
  for (std::size_t y = 0; y < s; ++y) {
    const std::size_t sy = off + (y * crop) / s;
    for (std::size_t x = 0; x < s; ++x) {
      const std::size_t sx = off + (x * crop) / s;
      for (std::size_t c = 0; c < 3; ++c)
        O[c * plane + y * s + x] = I[c * plane + sy * s + sx];
    }
  }
  return out;
}

tensor::Tensor augment_image(const tensor::Tensor& img, util::Rng& rng,
                             const AugmentConfig& cfg) {
  if (!cfg.enabled) return img;
  tensor::Tensor out = img;
  const double deg = rng.uniform(-cfg.max_rotation_deg, cfg.max_rotation_deg);
  if (std::abs(deg) > 0.5) out = rotate_image(out, deg);
  if (cfg.crop_fraction < 1.0) out = center_crop_zoom(out, cfg.crop_fraction);
  if (rng.bernoulli(cfg.hflip_prob)) out = hflip_image(out);
  return out;
}

}  // namespace hdczsc::data
