// Train/test class splits used in §IV-A: the ZS split (150 train / 50 test
// classes, disjoint), the noZS split (100 shared classes, image-level
// split), and the validation split used for hyper-parameter tuning (50
// classes disjoint from ZS-train's remaining 100).
#pragma once

#include <cstdint>
#include <vector>

namespace hdczsc::data {

struct ClassSplit {
  std::vector<std::size_t> train_classes;
  std::vector<std::size_t> test_classes;
  /// True if train and test share classes and images are split instead
  /// (the noZS protocol).
  bool image_level = false;
};

/// ZS split: `n_train` train classes, remaining test classes (disjoint).
ClassSplit make_zs_split(std::size_t n_classes, std::size_t n_train, std::uint64_t seed);

/// noZS split: `n_selected` classes present in both train and test; images
/// are split per instance (even instances train, odd instances test).
ClassSplit make_nozs_split(std::size_t n_classes, std::size_t n_selected, std::uint64_t seed);

/// Validation protocol of Fig. 5: from the ZS train classes carve out
/// `n_val` disjoint validation classes. Returns {train: reduced-train,
/// test: validation classes}.
ClassSplit make_validation_split(const ClassSplit& zs, std::size_t n_val, std::uint64_t seed);

}  // namespace hdczsc::data
