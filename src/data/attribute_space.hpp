// The CUB-200 attribute vocabulary, reproduced structurally: 28 attribute
// groups (bill shape, wing color, ..., wing pattern) over 61 unique values
// (15 colors, 4 patterns, 9 bill shapes, 6 tail shapes, 5 head-pattern
// specific values, 3 bill lengths, 5 sizes, 14 body shapes), giving exactly
// α = 312 (group, value) combinations — the numbers the paper's §III-A
// memory-reduction arithmetic relies on (71% reduction, 17 KB at d=1536).
#pragma once

#include <string>
#include <vector>

#include "hdc/codebook.hpp"

namespace hdczsc::data {

struct AttributeGroup {
  std::string name;
  /// Global value ids (into AttributeSpace::value_name) usable in this group.
  std::vector<std::size_t> value_ids;
  /// Offset of this group's first attribute in the flat α-dimensional vector.
  std::size_t attr_offset = 0;
};

class AttributeSpace {
 public:
  /// The canonical CUB-200-like space: G=28, V=61, α=312.
  static AttributeSpace cub();

  /// A reduced space for fast tests: G groups of `values_per_group` values
  /// drawn from a vocabulary of `n_values`.
  static AttributeSpace toy(std::size_t n_groups, std::size_t values_per_group,
                            std::size_t n_values);

  std::size_t n_groups() const { return groups_.size(); }
  std::size_t n_values() const { return value_names_.size(); }
  std::size_t n_attributes() const { return n_attributes_; }

  const AttributeGroup& group(std::size_t g) const { return groups_.at(g); }
  const std::string& value_name(std::size_t v) const { return value_names_.at(v); }

  /// Group index owning flat attribute x.
  std::size_t group_of(std::size_t x) const;
  /// Global value id of flat attribute x.
  std::size_t value_of(std::size_t x) const;
  /// Flat attribute index of the k-th value of group g.
  std::size_t attribute_index(std::size_t g, std::size_t k) const;

  /// (group, value) pairs for every flat attribute, ready for
  /// hdc::FactoredDictionary.
  std::vector<hdc::GroupValuePair> hdc_pairs() const;

 private:
  std::vector<AttributeGroup> groups_;
  std::vector<std::string> value_names_;
  std::vector<std::size_t> attr_group_;  // flat attr -> group
  std::vector<std::size_t> attr_value_;  // flat attr -> global value id
  std::size_t n_attributes_ = 0;

  void finalize();
};

}  // namespace hdczsc::data
