// Procedural generic-object classification set standing in for ImageNet-1k
// in phase-I backbone pre-training (Fig. 2a). Each class is a distinct
// full-image procedural pattern (orientation, frequency, palette); the task
// is plain C-way classification with a softmax head.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hdczsc::data {

struct ShapesSyntheticConfig {
  std::size_t n_classes = 50;
  std::size_t images_per_class = 20;
  std::size_t image_size = 32;
  double pixel_noise = 0.08;
  std::uint64_t seed = 7;
};

struct ShapesSample {
  tensor::Tensor image;  ///< [3, S, S] in [0, 1]
  std::size_t label = 0;
};

class ShapesSynthetic {
 public:
  explicit ShapesSynthetic(ShapesSyntheticConfig cfg);

  std::size_t n_classes() const { return cfg_.n_classes; }
  std::size_t images_per_class() const { return cfg_.images_per_class; }
  std::size_t image_size() const { return cfg_.image_size; }

  /// Deterministic render of instance `i` of class `c`.
  ShapesSample sample(std::size_t c, std::size_t i) const;

 private:
  ShapesSyntheticConfig cfg_;
};

}  // namespace hdczsc::data
