#include "hdc/memory_report.hpp"

#include <sstream>

namespace hdczsc::hdc {

MemoryReport memory_report(std::size_t n_groups, std::size_t n_values,
                           std::size_t n_attributes, std::size_t dim) {
  MemoryReport r;
  r.n_groups = n_groups;
  r.n_values = n_values;
  r.n_attributes = n_attributes;
  r.dim = dim;
  r.factored_bytes = ((n_groups + n_values) * dim + 7) / 8;
  r.flat_bytes = (n_attributes * dim + 7) / 8;
  r.reduction_percent =
      r.flat_bytes == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(r.factored_bytes) /
                               static_cast<double>(r.flat_bytes));
  return r;
}

std::string to_string(const MemoryReport& r) {
  std::ostringstream oss;
  oss << "codebooks: G=" << r.n_groups << " V=" << r.n_values << " alpha=" << r.n_attributes
      << " d=" << r.dim << "\n"
      << "  factored (G+V) storage: " << r.factored_bytes << " B\n"
      << "  flat (alpha) storage:   " << r.flat_bytes << " B\n"
      << "  reduction:              " << r.reduction_percent << " %";
  return oss.str();
}

}  // namespace hdczsc::hdc
