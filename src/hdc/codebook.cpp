#include "hdc/codebook.hpp"

#include <stdexcept>

namespace hdczsc::hdc {

Codebook::Codebook(std::size_t count, std::size_t dim, util::Rng& rng) {
  items_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) items_.push_back(BipolarHV::random(dim, rng));
}

const BipolarHV& Codebook::operator[](std::size_t i) const {
  if (i >= items_.size()) throw std::out_of_range("Codebook: index out of range");
  return items_[i];
}

std::size_t Codebook::nearest(const BipolarHV& query) const {
  if (items_.empty()) throw std::logic_error("Codebook::nearest on empty codebook");
  std::size_t best = 0;
  double best_sim = items_[0].cosine(query);
  for (std::size_t i = 1; i < items_.size(); ++i) {
    const double s = items_[i].cosine(query);
    if (s > best_sim) {
      best_sim = s;
      best = i;
    }
  }
  return best;
}

std::size_t Codebook::storage_bytes_binary() const {
  if (items_.empty()) return 0;
  const std::size_t bits = items_.size() * dim();
  return (bits + 7) / 8;
}

FactoredDictionary::FactoredDictionary(std::size_t n_groups, std::size_t n_values,
                                       std::vector<GroupValuePair> pairs, std::size_t dim,
                                       util::Rng& rng)
    : groups_(n_groups, dim, rng), values_(n_values, dim, rng), pairs_(std::move(pairs)) {
  for (const auto& p : pairs_) {
    if (p.group >= n_groups || p.value >= n_values)
      throw std::invalid_argument("FactoredDictionary: pair indices out of range");
  }
}

BipolarHV FactoredDictionary::attribute_vector(std::size_t x) const {
  if (x >= pairs_.size())
    throw std::out_of_range("FactoredDictionary::attribute_vector: index out of range");
  return groups_[pairs_[x].group].bind(values_[pairs_[x].value]);
}

tensor::Tensor FactoredDictionary::dictionary_tensor() const {
  const std::size_t alpha = pairs_.size(), d = dim();
  tensor::Tensor b({alpha, d});
  float* B = b.data();
  for (std::size_t x = 0; x < alpha; ++x) {
    const BipolarHV& g = groups_[pairs_[x].group];
    const BipolarHV& v = values_[pairs_[x].value];
    float* row = B + x * d;
    for (std::size_t i = 0; i < d; ++i) row[i] = static_cast<float>(g[i] * v[i]);
  }
  return b;
}

std::size_t FactoredDictionary::factored_storage_bytes() const {
  return ((n_groups() + n_values()) * dim() + 7) / 8;
}

std::size_t FactoredDictionary::flat_storage_bytes() const {
  return (n_attributes() * dim() + 7) / 8;
}

}  // namespace hdczsc::hdc
