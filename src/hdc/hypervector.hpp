// Hyperdimensional computing primitives (Kanerva 2009).
//
// Two representations are provided, mirroring §III-A of the paper:
//  * BipolarHV: dense {-1,+1} vectors stored as int8. Binding is elementwise
//    multiplication; similarity is the cosine (= normalized dot product).
//  * BinaryHV:  dense {0,1} vectors packed 64/word. Binding is XOR;
//    similarity is 1 - 2*hamming/d, which equals the bipolar cosine of the
//    corresponding ±1 vectors. This is the "stationary binary weights/ops"
//    form targeted at edge accelerators in the paper's Fig. 1.
//
// Conversions between the two are exact (bit b <-> bipolar 1-2b), and all
// algebraic identities (bind self-inverse, quasi-orthogonality of random
// vectors, similarity equivalence) are covered by tests/test_hdc.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hdczsc::hdc {

class BinaryHV;  // fwd

/// Dense bipolar hypervector with components in {-1, +1}.
class BipolarHV {
 public:
  BipolarHV() = default;
  /// All +1 (the binding identity).
  explicit BipolarHV(std::size_t dim) : v_(dim, +1) {}
  explicit BipolarHV(std::vector<std::int8_t> values) : v_(std::move(values)) {}

  /// i.i.d. Rademacher sample.
  static BipolarHV random(std::size_t dim, util::Rng& rng);

  std::size_t dim() const { return v_.size(); }
  std::int8_t operator[](std::size_t i) const { return v_[i]; }
  std::int8_t& operator[](std::size_t i) { return v_[i]; }
  const std::vector<std::int8_t>& raw() const { return v_; }

  /// Variable binding (elementwise multiply). Self-inverse:
  /// bind(bind(a,b),b) == a.
  BipolarHV bind(const BipolarHV& other) const;
  /// Unbinding; for bipolar vectors identical to bind.
  BipolarHV unbind(const BipolarHV& other) const { return bind(other); }

  /// Cyclic permutation by k positions (rho^k). Invertible via permute(-k).
  BipolarHV permute(long k) const;

  /// Cosine similarity in [-1, 1] (dot / d).
  double cosine(const BipolarHV& other) const;
  /// Raw integer dot product.
  long dot(const BipolarHV& other) const;

  /// Convert to packed binary (+1 -> 0, -1 -> 1).
  BinaryHV to_binary() const;
  /// Convert to a float tensor row (±1.0f).
  tensor::Tensor to_tensor() const;

  bool operator==(const BipolarHV& other) const { return v_ == other.v_; }

 private:
  std::vector<std::int8_t> v_;
};

/// Accumulator for bundling (superposition): sum bipolar vectors, then take
/// the elementwise sign. Ties (possible for even counts) are broken with a
/// caller-provided rng for unbiased majority, as in binarized bundling
/// (Schmuck et al. 2019).
class BundleAccumulator {
 public:
  explicit BundleAccumulator(std::size_t dim) : sums_(dim, 0) {}

  void add(const BipolarHV& hv);
  /// Add with an integer weight (e.g., counts).
  void add_weighted(const BipolarHV& hv, long weight);

  std::size_t count() const { return count_; }
  std::size_t dim() const { return sums_.size(); }
  const std::vector<long>& sums() const { return sums_; }

  /// Majority/sign readout.
  BipolarHV finalize(util::Rng& rng) const;

 private:
  std::vector<long> sums_;
  std::size_t count_ = 0;
};

/// Dense binary hypervector packed into 64-bit words.
class BinaryHV {
 public:
  BinaryHV() = default;
  /// All zeros (the XOR identity).
  explicit BinaryHV(std::size_t dim);

  static BinaryHV random(std::size_t dim, util::Rng& rng);

  std::size_t dim() const { return dim_; }
  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);

  /// XOR binding (self-inverse).
  BinaryHV bind(const BinaryHV& other) const;
  BinaryHV unbind(const BinaryHV& other) const { return bind(other); }

  /// Hamming distance (number of differing bits).
  std::size_t hamming(const BinaryHV& other) const;
  /// Normalized similarity 1 - 2*hamming/d in [-1, 1]; equals the bipolar
  /// cosine of the ±1 counterparts.
  double similarity(const BinaryHV& other) const;

  BipolarHV to_bipolar() const;

  /// Storage cost in bytes (packed words only).
  std::size_t storage_bytes() const { return words_.size() * sizeof(std::uint64_t); }

  const std::vector<std::uint64_t>& words() const { return words_; }

  bool operator==(const BinaryHV& other) const {
    return dim_ == other.dim_ && words_ == other.words_;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
  void mask_tail();
};

/// Mean absolute pairwise cosine of a set of hypervectors — the
/// quasi-orthogonality diagnostic: for i.i.d. Rademacher vectors this
/// concentrates near sqrt(2/(pi*d)).
double mean_abs_pairwise_cosine(const std::vector<BipolarHV>& hvs);

// -- batched Hamming kernel --------------------------------------------------
// The inference hot path of the serving runtime: one query scored against a
// whole prototype matrix with word-level XOR + popcount. Rows are laid out
// contiguously (`words` 64-bit words each) so the scan is a single linear
// sweep — the access pattern an associative-memory accelerator would use.

/// out[i] = popcount(query ^ rows[i*words .. (i+1)*words)) for i in [0, n_rows).
///
/// Parallel threshold and chunking contract: scans touching fewer than
/// 256 KiB of packed prototype codes (n_rows·words < 2^15 words) run
/// entirely on the calling thread — the XOR+popcount sweep through a few
/// KiB beats any hand-off, and this is the common per-query serving case.
/// At or above the threshold the rows are split into contiguous chunks of
/// at least max(64, 2^15/(4·words)) rows across util::parallel_for
/// workers; each worker writes only its own out[i] range, so the call is
/// safe from any thread but must not assume a particular execution order
/// across rows. Nested inside another parallel_for body (e.g. the sharded
/// store's per-shard scatter) the sweep runs inline — the pool is not
/// re-entrant.
void hamming_many_packed(const std::uint64_t* query, const std::uint64_t* rows,
                         std::size_t n_rows, std::size_t words, std::uint32_t* out);

/// Query-blocked variant: out[q*n_rows + i] = popcount(queries[q] ^ rows[i])
/// for n_queries packed queries laid out contiguously (`words` each). Each
/// prototype row is loaded once per 4-query block and scored down four
/// independent popcount chains — the memory-amortized form the sharded
/// store's scatter uses to sweep a cache-resident shard with a whole batch
/// (serve/sharded_store.hpp). Always runs on the calling thread; callers
/// parallelize across shards, not inside the sweep.
void hamming_many_packed_multi(const std::uint64_t* queries, std::size_t n_queries,
                               const std::uint64_t* rows, std::size_t n_rows,
                               std::size_t words, std::uint32_t* out);

/// Convenience overload over BinaryHV prototypes; every prototype must share
/// the query's dimensionality.
std::vector<std::size_t> hamming_many(const BinaryHV& query,
                                      const std::vector<BinaryHV>& prototypes);

/// Name of the packed-scan kernel variant selected for this CPU
/// ("popcnt" / "portable") — surfaced in benches and logs, mirroring
/// tensor::gemm_kernel_name().
const char* hamming_kernel_name();

/// Testing/diagnostics hook: pin the packed-scan kernels to one variant —
/// "portable", "popcnt", or "auto" to restore runtime dispatch. Returns
/// false (changing nothing) when the variant is unknown or unsupported on
/// this CPU/build. Not synchronized against concurrent scans; call from
/// test or bench setup only, and restore "auto" afterwards.
bool set_hamming_kernel(const char* name);

}  // namespace hdczsc::hdc
