// HDC encoding techniques beyond the paper's core path, from the cited HDC
// literature (Kanerva 2009; Schmuck et al. 2019 "Hardware optimizations of
// dense binary HDC: rematerialization, binarized bundling, combinational
// associative memory"):
//
//  * LevelCodebook    — thermometer/level encoding of scalars in [0, 1],
//                       giving similarity that decays with value distance;
//                       an all-binary way to encode the *continuous* class
//                       attribute strengths of the CUB matrix A.
//  * class prototypes — binarized weighted bundling of the attribute
//                       dictionary by a class's attribute strengths:
//                       c = sign(Σ_x round(L·A[c,x]) · b_x). This is the
//                       fully-binary alternative to the paper's float
//                       ϕ = A × B, benchmarked in
//                       bench_ablation_binary_prototypes.
//  * AssociativeMemory — a Hamming-distance class-prototype memory (the
//                       combinational associative memory the paper's edge
//                       accelerators implement).
//  * sequence encoding — permutation-based positional binding ρ^i(v_i),
//                       the standard HDC sequence primitive.
#pragma once

#include "hdc/codebook.hpp"
#include "tensor/tensor.hpp"

namespace hdczsc::hdc {

/// Level (thermometer) codebook: `levels` hypervectors interpolating from a
/// random endpoint L_0 to its negation, by flipping a deterministic random
/// subset of components per step. Adjacent levels are highly similar;
/// distant levels approach anti-correlation.
class LevelCodebook {
 public:
  LevelCodebook(std::size_t levels, std::size_t dim, util::Rng& rng);

  std::size_t levels() const { return items_.size(); }
  std::size_t dim() const { return items_.empty() ? 0 : items_[0].dim(); }

  const BipolarHV& operator[](std::size_t level) const;
  /// Encode a scalar in [0, 1] (clamped) to its nearest level vector.
  const BipolarHV& encode(double value) const;

 private:
  std::vector<BipolarHV> items_;
};

/// Binarized weighted bundling of the factored dictionary by one class's
/// continuous attribute strengths (row of A, values in [0, 1]):
///   proto = sign( Σ_x round(quant_levels · A[x]) · b_x )
/// with ties broken by `rng`. `quant_levels` controls the integer weight
/// resolution (the paper's hardware-oriented citations use small integers).
BipolarHV class_prototype(const FactoredDictionary& dict, const float* strengths,
                          std::size_t n_attributes, std::size_t quant_levels,
                          util::Rng& rng);

/// All class prototypes from a class-attribute matrix A [C, α].
std::vector<BipolarHV> class_prototypes(const FactoredDictionary& dict,
                                        const tensor::Tensor& class_attributes,
                                        std::size_t quant_levels, util::Rng& rng);

/// Combinational associative memory over packed binary prototypes: stores C
/// class vectors, answers nearest-class queries by Hamming distance — the
/// inference structure of the paper's cited digital HDC accelerator.
class AssociativeMemory {
 public:
  AssociativeMemory() = default;
  explicit AssociativeMemory(const std::vector<BipolarHV>& prototypes);

  std::size_t size() const { return items_.size(); }
  std::size_t dim() const { return items_.empty() ? 0 : items_[0].dim(); }

  /// Index of the closest stored prototype (max normalized similarity).
  std::size_t nearest(const BinaryHV& query) const;
  std::size_t nearest(const BipolarHV& query) const { return nearest(query.to_binary()); }

  /// Similarities to every stored prototype, in storage order.
  std::vector<double> similarities(const BinaryHV& query) const;

  /// Total packed storage in bytes.
  std::size_t storage_bytes() const;

 private:
  std::vector<BinaryHV> items_;
};

/// Permutation-based sequence encoding: bundle(ρ^0(v_0), ρ^1(v_1), ...).
/// Position is carried by cyclic shift; the result is quasi-orthogonal to
/// any reordering of the same items.
BipolarHV encode_sequence(const std::vector<BipolarHV>& items, util::Rng& rng);

}  // namespace hdczsc::hdc
