#include "hdc/hypervector.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace hdczsc::hdc {

namespace {
void check_same_dim(std::size_t a, std::size_t b, const char* op) {
  if (a != b)
    throw std::invalid_argument(std::string(op) + ": dimension mismatch " + std::to_string(a) +
                                " vs " + std::to_string(b));
}
}  // namespace

// ---------------------------------------------------------------------------
// BipolarHV
// ---------------------------------------------------------------------------

BipolarHV BipolarHV::random(std::size_t dim, util::Rng& rng) {
  std::vector<std::int8_t> v(dim);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.rademacher());
  return BipolarHV(std::move(v));
}

BipolarHV BipolarHV::bind(const BipolarHV& other) const {
  check_same_dim(dim(), other.dim(), "BipolarHV::bind");
  std::vector<std::int8_t> out(dim());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::int8_t>(v_[i] * other.v_[i]);
  return BipolarHV(std::move(out));
}

BipolarHV BipolarHV::permute(long k) const {
  const long d = static_cast<long>(dim());
  if (d == 0) return *this;
  long shift = ((k % d) + d) % d;
  std::vector<std::int8_t> out(dim());
  for (long i = 0; i < d; ++i) out[static_cast<std::size_t>((i + shift) % d)] = v_[i];
  return BipolarHV(std::move(out));
}

long BipolarHV::dot(const BipolarHV& other) const {
  check_same_dim(dim(), other.dim(), "BipolarHV::dot");
  long s = 0;
  for (std::size_t i = 0; i < dim(); ++i) s += static_cast<long>(v_[i]) * other.v_[i];
  return s;
}

double BipolarHV::cosine(const BipolarHV& other) const {
  if (dim() == 0) return 0.0;
  return static_cast<double>(dot(other)) / static_cast<double>(dim());
}

BinaryHV BipolarHV::to_binary() const {
  BinaryHV b(dim());
  for (std::size_t i = 0; i < dim(); ++i) b.set(i, v_[i] < 0);
  return b;
}

tensor::Tensor BipolarHV::to_tensor() const {
  tensor::Tensor t({dim()});
  for (std::size_t i = 0; i < dim(); ++i) t[i] = static_cast<float>(v_[i]);
  return t;
}

// ---------------------------------------------------------------------------
// BundleAccumulator
// ---------------------------------------------------------------------------

void BundleAccumulator::add(const BipolarHV& hv) { add_weighted(hv, 1); }

void BundleAccumulator::add_weighted(const BipolarHV& hv, long weight) {
  check_same_dim(dim(), hv.dim(), "BundleAccumulator::add");
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += weight * hv[i];
  ++count_;
}

BipolarHV BundleAccumulator::finalize(util::Rng& rng) const {
  std::vector<std::int8_t> out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (sums_[i] > 0) out[i] = +1;
    else if (sums_[i] < 0) out[i] = -1;
    else out[i] = static_cast<std::int8_t>(rng.rademacher());
  }
  return BipolarHV(std::move(out));
}

// ---------------------------------------------------------------------------
// BinaryHV
// ---------------------------------------------------------------------------

BinaryHV::BinaryHV(std::size_t dim) : dim_(dim), words_((dim + 63) / 64, 0) {}

void BinaryHV::mask_tail() {
  const std::size_t tail = dim_ % 64;
  if (tail != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

BinaryHV BinaryHV::random(std::size_t dim, util::Rng& rng) {
  BinaryHV b(dim);
  for (auto& w : b.words_) w = rng.next_u64();
  b.mask_tail();
  return b;
}

bool BinaryHV::get(std::size_t i) const {
  if (i >= dim_) throw std::out_of_range("BinaryHV::get: index out of range");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BinaryHV::set(std::size_t i, bool value) {
  if (i >= dim_) throw std::out_of_range("BinaryHV::set: index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value) words_[i / 64] |= mask;
  else words_[i / 64] &= ~mask;
}

BinaryHV BinaryHV::bind(const BinaryHV& other) const {
  check_same_dim(dim_, other.dim_, "BinaryHV::bind");
  BinaryHV out(dim_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = words_[i] ^ other.words_[i];
  return out;
}

std::size_t BinaryHV::hamming(const BinaryHV& other) const {
  check_same_dim(dim_, other.dim_, "BinaryHV::hamming");
  std::size_t h = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    h += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  return h;
}

double BinaryHV::similarity(const BinaryHV& other) const {
  if (dim_ == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(hamming(other)) / static_cast<double>(dim_);
}

BipolarHV BinaryHV::to_bipolar() const {
  std::vector<std::int8_t> v(dim_);
  for (std::size_t i = 0; i < dim_; ++i) v[i] = get(i) ? -1 : +1;
  return BipolarHV(std::move(v));
}

namespace {

// The packed-scan kernels are stamped per ISA, mirroring tensor/gemm.cpp:
// the build targets baseline x86-64 (no POPCNT instruction), where
// std::popcount lowers to a ~12-op bit-twiddling sequence. A variant
// compiled with the popcnt target attribute turns every count into one
// 1/cycle instruction; the best variant the CPU supports is picked once at
// runtime via __builtin_cpu_supports.
#define HDCZSC_DEFINE_HAMMING_KERNEL(suffix, attrs)                                         \
  attrs static void hamming_rows_##suffix(                                                  \
      const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_begin,         \
      std::size_t row_end, std::size_t words, std::uint32_t* out) {                         \
    for (std::size_t i = row_begin; i < row_end; ++i) {                                     \
      const std::uint64_t* row = rows + i * words;                                          \
      std::uint32_t h = 0;                                                                  \
      std::size_t w = 0;                                                                    \
      /* 4-way unroll: keeps four independent popcount chains in flight. */                 \
      for (; w + 4 <= words; w += 4) {                                                      \
        h += static_cast<std::uint32_t>(std::popcount(query[w] ^ row[w])) +                 \
             static_cast<std::uint32_t>(std::popcount(query[w + 1] ^ row[w + 1])) +         \
             static_cast<std::uint32_t>(std::popcount(query[w + 2] ^ row[w + 2])) +         \
             static_cast<std::uint32_t>(std::popcount(query[w + 3] ^ row[w + 3]));          \
      }                                                                                     \
      for (; w < words; ++w)                                                                \
        h += static_cast<std::uint32_t>(std::popcount(query[w] ^ row[w]));                  \
      out[i] = h;                                                                           \
    }                                                                                       \
  }                                                                                         \
  /* Query-blocked sweep: each prototype row is loaded once and scored      */              \
  /* against four queries while it sits in registers — four independent     */              \
  /* popcount chains (the single-query kernel is latency-bound on one       */              \
  /* chain at small `words`), and 1/4 the row-stream traffic.               */              \
  attrs static void hamming_multi_##suffix(                                                 \
      const std::uint64_t* queries, std::size_t n_queries, const std::uint64_t* rows,       \
      std::size_t n_rows, std::size_t words, std::uint32_t* out) {                          \
    std::size_t q = 0;                                                                      \
    for (; q + 4 <= n_queries; q += 4) {                                                    \
      const std::uint64_t* q0 = queries + (q + 0) * words;                                  \
      const std::uint64_t* q1 = queries + (q + 1) * words;                                  \
      const std::uint64_t* q2 = queries + (q + 2) * words;                                  \
      const std::uint64_t* q3 = queries + (q + 3) * words;                                  \
      std::uint32_t* o0 = out + (q + 0) * n_rows;                                           \
      std::uint32_t* o1 = out + (q + 1) * n_rows;                                           \
      std::uint32_t* o2 = out + (q + 2) * n_rows;                                           \
      std::uint32_t* o3 = out + (q + 3) * n_rows;                                           \
      for (std::size_t i = 0; i < n_rows; ++i) {                                            \
        const std::uint64_t* row = rows + i * words;                                        \
        std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0;                                       \
        for (std::size_t w = 0; w < words; ++w) {                                           \
          const std::uint64_t rw = row[w];                                                  \
          h0 += static_cast<std::uint32_t>(std::popcount(q0[w] ^ rw));                      \
          h1 += static_cast<std::uint32_t>(std::popcount(q1[w] ^ rw));                      \
          h2 += static_cast<std::uint32_t>(std::popcount(q2[w] ^ rw));                      \
          h3 += static_cast<std::uint32_t>(std::popcount(q3[w] ^ rw));                      \
        }                                                                                   \
        o0[i] = h0;                                                                         \
        o1[i] = h1;                                                                         \
        o2[i] = h2;                                                                         \
        o3[i] = h3;                                                                         \
      }                                                                                     \
    }                                                                                       \
    for (; q < n_queries; ++q)                                                              \
      hamming_rows_##suffix(queries + q * words, rows, 0, n_rows, words, out + q * n_rows); \
  }

HDCZSC_DEFINE_HAMMING_KERNEL(portable, )
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HDCZSC_HAMMING_X86_DISPATCH 1
HDCZSC_DEFINE_HAMMING_KERNEL(popcnt, __attribute__((target("popcnt"))))
#endif

using HammingRowsFn = void (*)(const std::uint64_t*, const std::uint64_t*, std::size_t,
                               std::size_t, std::size_t, std::uint32_t*);
using HammingMultiFn = void (*)(const std::uint64_t*, std::size_t, const std::uint64_t*,
                                std::size_t, std::size_t, std::uint32_t*);

struct HammingKernels {
  HammingRowsFn rows;
  HammingMultiFn multi;
  const char* name;
};

HammingKernels pick_hamming_kernels() {
#if defined(HDCZSC_HAMMING_X86_DISPATCH)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("popcnt"))
    return {hamming_rows_popcnt, hamming_multi_popcnt, "popcnt"};
#endif
  return {hamming_rows_portable, hamming_multi_portable, "portable"};
}

/// Current selection — runtime-dispatched once, overridable via
/// set_hamming_kernel (tests pin a variant to cover both code paths on
/// whatever CPU runs them).
HammingKernels& hamming_kernels() {
  static HammingKernels k = pick_hamming_kernels();
  return k;
}

}  // namespace

const char* hamming_kernel_name() { return hamming_kernels().name; }

bool set_hamming_kernel(const char* name) {
  const std::string want = name ? name : "";
  if (want == "auto") {
    hamming_kernels() = pick_hamming_kernels();
    return true;
  }
  if (want == "portable") {
    hamming_kernels() = {hamming_rows_portable, hamming_multi_portable, "portable"};
    return true;
  }
#if defined(HDCZSC_HAMMING_X86_DISPATCH)
  if (want == "popcnt" && __builtin_cpu_supports("popcnt")) {
    hamming_kernels() = {hamming_rows_popcnt, hamming_multi_popcnt, "popcnt"};
    return true;
  }
#endif
  return false;
}

namespace {
/// Profiling hook (obs::set_profiling_enabled): wall time of each top-level
/// packed-Hamming scan, single- and multi-query alike. With profiling off
/// the ScopedTimer reads no clock.
obs::Histogram* hamming_hist() {
  static const std::shared_ptr<obs::Histogram> h = obs::default_registry().histogram(
      "hdc_hamming_scan_ms", {}, "wall time of one packed-Hamming prototype scan");
  return h.get();
}
}  // namespace

void hamming_many_packed_multi(const std::uint64_t* queries, std::size_t n_queries,
                               const std::uint64_t* rows, std::size_t n_rows,
                               std::size_t words, std::uint32_t* out) {
  const obs::ScopedTimer profile(hamming_hist());
  hamming_kernels().multi(queries, n_queries, rows, n_rows, words, out);
}

void hamming_many_packed(const std::uint64_t* query, const std::uint64_t* rows,
                         std::size_t n_rows, std::size_t words, std::uint32_t* out) {
  const obs::ScopedTimer profile(hamming_hist());
  // Small scans (the common per-query serving case) stay on the calling
  // thread: the XOR+popcount sweep through a few KiB beats any hand-off.
  // Large label spaces — the prototype-store sharding regime — fan the
  // prototype rows out across workers in contiguous chunks.
  constexpr std::size_t kSequentialWords = std::size_t{1} << 15;  // 256 KiB of codes
  const HammingRowsFn sweep = hamming_kernels().rows;
  if (words == 0 || n_rows * words < kSequentialWords) {
    sweep(query, rows, 0, n_rows, words, out);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(64, kSequentialWords / (4 * words));
  util::parallel_for_chunks(0, n_rows, [&](std::size_t i0, std::size_t i1) {
    sweep(query, rows, i0, i1, words, out);
  }, grain);
}

std::vector<std::size_t> hamming_many(const BinaryHV& query,
                                      const std::vector<BinaryHV>& prototypes) {
  // Each prototype's word buffer is scanned in place — no repacking; hot
  // paths that want one contiguous sweep pre-pack once (see
  // serve::PrototypeStore) and call hamming_many_packed directly.
  const std::size_t words = query.words().size();
  std::vector<std::size_t> out(prototypes.size());
  for (std::size_t i = 0; i < prototypes.size(); ++i) {
    check_same_dim(query.dim(), prototypes[i].dim(), "hamming_many");
    std::uint32_t h = 0;
    hamming_many_packed(query.words().data(), prototypes[i].words().data(), 1, words, &h);
    out[i] = h;
  }
  return out;
}

double mean_abs_pairwise_cosine(const std::vector<BipolarHV>& hvs) {
  if (hvs.size() < 2) return 0.0;
  double s = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < hvs.size(); ++i)
    for (std::size_t j = i + 1; j < hvs.size(); ++j) {
      s += std::abs(hvs[i].cosine(hvs[j]));
      ++pairs;
    }
  return s / static_cast<double>(pairs);
}

}  // namespace hdczsc::hdc
