// Item memories (codebooks) of atomic hypervectors, and the factored
// group ⊙ value dictionary of §III-A: instead of storing one atomic vector
// per (group, value) combination (α = 312 for CUB), only G = 28 group
// vectors and V = 61 value vectors are stored, and attribute-level
// codevectors b_x = g_y ⊙ v_z are materialized on the fly.
#pragma once

#include <string>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdczsc::hdc {

/// A fixed, randomly initialized item memory of bipolar hypervectors.
class Codebook {
 public:
  Codebook() = default;
  /// `count` i.i.d. Rademacher hypervectors of dimension `dim`.
  Codebook(std::size_t count, std::size_t dim, util::Rng& rng);

  std::size_t size() const { return items_.size(); }
  std::size_t dim() const { return items_.empty() ? 0 : items_[0].dim(); }

  const BipolarHV& operator[](std::size_t i) const;

  /// Index of the most similar item to `query` (associative lookup).
  std::size_t nearest(const BipolarHV& query) const;

  /// Quasi-orthogonality diagnostic over all items.
  double mean_abs_pairwise_cosine() const {
    return hdc::mean_abs_pairwise_cosine(items_);
  }

  /// Packed binary storage cost of all items, in bytes.
  std::size_t storage_bytes_binary() const;

  const std::vector<BipolarHV>& items() const { return items_; }

 private:
  std::vector<BipolarHV> items_;
};

/// (group, value) pair describing one attribute-level combination.
struct GroupValuePair {
  std::size_t group = 0;
  std::size_t value = 0;
};

/// Factored attribute dictionary: groups codebook + values codebook +
/// per-attribute (group, value) index pairs.
class FactoredDictionary {
 public:
  FactoredDictionary() = default;
  FactoredDictionary(std::size_t n_groups, std::size_t n_values,
                     std::vector<GroupValuePair> pairs, std::size_t dim, util::Rng& rng);

  std::size_t n_groups() const { return groups_.size(); }
  std::size_t n_values() const { return values_.size(); }
  std::size_t n_attributes() const { return pairs_.size(); }
  std::size_t dim() const { return groups_.dim(); }

  const Codebook& groups() const { return groups_; }
  const Codebook& values() const { return values_; }
  const std::vector<GroupValuePair>& pairs() const { return pairs_; }

  /// Materialize attribute codevector b_x = g_y ⊙ v_z.
  BipolarHV attribute_vector(std::size_t x) const;

  /// Materialize the whole dictionary as a float matrix B [α, d] of ±1,
  /// ready for ϕ = A × B (§III-B).
  tensor::Tensor dictionary_tensor() const;

  /// Bytes to store only the two codebooks (packed binary) versus storing
  /// all α attribute vectors explicitly — the 71% saving of §III-A.
  std::size_t factored_storage_bytes() const;
  std::size_t flat_storage_bytes() const;

 private:
  Codebook groups_;
  Codebook values_;
  std::vector<GroupValuePair> pairs_;
};

}  // namespace hdczsc::hdc
