// Memory accounting reproducing the §III-A claims: the factored codebook
// stores (G + V) atomic hypervectors instead of α, a 71% reduction for
// CUB-200 (G=28, V=61, α=312), i.e. ~17 KB at d=1536 binary.
#pragma once

#include <cstddef>
#include <string>

namespace hdczsc::hdc {

struct MemoryReport {
  std::size_t n_groups = 0;
  std::size_t n_values = 0;
  std::size_t n_attributes = 0;
  std::size_t dim = 0;

  std::size_t factored_bytes = 0;  ///< (G+V) binary hypervectors
  std::size_t flat_bytes = 0;      ///< α binary hypervectors
  double reduction_percent = 0.0;  ///< 100 * (1 - factored/flat)
};

MemoryReport memory_report(std::size_t n_groups, std::size_t n_values,
                           std::size_t n_attributes, std::size_t dim);

std::string to_string(const MemoryReport& r);

}  // namespace hdczsc::hdc
