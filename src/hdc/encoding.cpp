#include "hdc/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdczsc::hdc {

LevelCodebook::LevelCodebook(std::size_t levels, std::size_t dim, util::Rng& rng) {
  if (levels < 2) throw std::invalid_argument("LevelCodebook: need at least 2 levels");
  BipolarHV base = BipolarHV::random(dim, rng);
  // A fixed random flip order; level k flips the first k*dim/(levels-1)
  // positions of the order relative to the base vector.
  auto order = rng.permutation(dim);
  items_.reserve(levels);
  for (std::size_t k = 0; k < levels; ++k) {
    BipolarHV hv = base;
    const std::size_t flips = (k * dim) / (levels - 1);
    for (std::size_t i = 0; i < flips; ++i)
      hv[order[i]] = static_cast<std::int8_t>(-hv[order[i]]);
    items_.push_back(std::move(hv));
  }
}

const BipolarHV& LevelCodebook::operator[](std::size_t level) const {
  if (level >= items_.size()) throw std::out_of_range("LevelCodebook: level out of range");
  return items_[level];
}

const BipolarHV& LevelCodebook::encode(double value) const {
  if (value < 0.0) value = 0.0;
  if (value > 1.0) value = 1.0;
  const auto idx = static_cast<std::size_t>(
      std::lround(value * static_cast<double>(items_.size() - 1)));
  return items_[idx];
}

BipolarHV class_prototype(const FactoredDictionary& dict, const float* strengths,
                          std::size_t n_attributes, std::size_t quant_levels,
                          util::Rng& rng) {
  if (n_attributes != dict.n_attributes())
    throw std::invalid_argument("class_prototype: attribute count mismatch");
  if (quant_levels == 0) throw std::invalid_argument("class_prototype: quant_levels == 0");
  BundleAccumulator acc(dict.dim());
  for (std::size_t x = 0; x < n_attributes; ++x) {
    const long w = std::lround(static_cast<double>(strengths[x]) *
                               static_cast<double>(quant_levels));
    if (w <= 0) continue;  // inactive attributes contribute nothing
    acc.add_weighted(dict.attribute_vector(x), w);
  }
  return acc.finalize(rng);
}

std::vector<BipolarHV> class_prototypes(const FactoredDictionary& dict,
                                        const tensor::Tensor& class_attributes,
                                        std::size_t quant_levels, util::Rng& rng) {
  if (class_attributes.dim() != 2 || class_attributes.size(1) != dict.n_attributes())
    throw std::invalid_argument("class_prototypes: A must be [C, alpha]");
  std::vector<BipolarHV> protos;
  const std::size_t c = class_attributes.size(0), alpha = class_attributes.size(1);
  protos.reserve(c);
  for (std::size_t i = 0; i < c; ++i)
    protos.push_back(class_prototype(dict, class_attributes.data() + i * alpha, alpha,
                                     quant_levels, rng));
  return protos;
}

AssociativeMemory::AssociativeMemory(const std::vector<BipolarHV>& prototypes) {
  items_.reserve(prototypes.size());
  for (const auto& p : prototypes) items_.push_back(p.to_binary());
  for (std::size_t i = 1; i < items_.size(); ++i)
    if (items_[i].dim() != items_[0].dim())
      throw std::invalid_argument("AssociativeMemory: inconsistent dimensions");
}

std::size_t AssociativeMemory::nearest(const BinaryHV& query) const {
  if (items_.empty()) throw std::logic_error("AssociativeMemory::nearest on empty memory");
  std::size_t best = 0;
  double best_sim = items_[0].similarity(query);
  for (std::size_t i = 1; i < items_.size(); ++i) {
    const double s = items_[i].similarity(query);
    if (s > best_sim) {
      best_sim = s;
      best = i;
    }
  }
  return best;
}

std::vector<double> AssociativeMemory::similarities(const BinaryHV& query) const {
  std::vector<double> out(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) out[i] = items_[i].similarity(query);
  return out;
}

std::size_t AssociativeMemory::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& hv : items_) n += hv.storage_bytes();
  return n;
}

BipolarHV encode_sequence(const std::vector<BipolarHV>& items, util::Rng& rng) {
  if (items.empty()) throw std::invalid_argument("encode_sequence: empty sequence");
  BundleAccumulator acc(items[0].dim());
  for (std::size_t i = 0; i < items.size(); ++i)
    acc.add(items[i].permute(static_cast<long>(i)));
  return acc.finalize(rng);
}

}  // namespace hdczsc::hdc
