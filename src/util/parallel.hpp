// Parallel-for over index ranges backed by a lazily created thread pool.
//
// On a single-core machine (or with HDCZSC_NUM_THREADS=1) everything runs
// serially with zero overhead; on multi-core machines GEMM / convolution /
// data synthesis / prototype scans fan out across workers.
//
// Worker count resolution order:
//   1. HDCZSC_NUM_THREADS environment variable (operator/CI pin),
//   2. HDCZSC_THREADS (legacy spelling, kept for compatibility),
//   3. std::thread::hardware_concurrency().
// set_worker_count() overrides all three at runtime.
#pragma once

#include <cstddef>
#include <functional>

namespace hdczsc::util {

/// Number of worker threads used by parallel_for. Defaults to the hardware
/// concurrency, overridable via the HDCZSC_NUM_THREADS (preferred) or
/// HDCZSC_THREADS (legacy) environment variables.
std::size_t worker_count();

/// Override the worker count programmatically (0 restores the default).
void set_worker_count(std::size_t n);

/// Invoke fn(i) for i in [begin, end), potentially in parallel.
/// `grain` is the minimum number of iterations per task; ranges smaller than
/// 2*grain run inline on the calling thread. Calls nested inside another
/// parallel_for body run inline too (serial) — the pool is not re-entrant.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 64);

/// Invoke fn(begin, end) on contiguous chunks of [begin, end).
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 64);

}  // namespace hdczsc::util
