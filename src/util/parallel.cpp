#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace hdczsc::util {

namespace {

// Set while this thread is executing inside a parallel region (as the
// caller or as a pool worker). Nested parallel_for calls from such a thread
// run inline instead of re-entering the pool: run_mutex_ is non-recursive
// and the outer run is waiting on this thread, so re-entry would deadlock.
thread_local bool t_in_parallel_region = false;

std::size_t default_workers() {
  // HDCZSC_NUM_THREADS is the documented operator knob (CI pins it for
  // deterministic worker counts); HDCZSC_THREADS is honored as the legacy
  // spelling when the new one is absent.
  for (const char* name : {"HDCZSC_NUM_THREADS", "HDCZSC_THREADS"}) {
    if (const char* env = std::getenv(name)) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::atomic<std::size_t> g_workers{0};  // 0 = use default

/// A tiny persistent pool: tasks are chunk ranges handed out via an atomic
/// counter. Created on first parallel use, torn down at exit.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t begin, std::size_t end, std::size_t grain,
           const std::function<void(std::size_t, std::size_t)>& fn,
           std::size_t n_workers) {
    std::unique_lock<std::mutex> guard(run_mutex_);
    ensure_threads(n_workers - 1);  // caller participates too
    begin_ = begin;
    end_ = end;
    grain_ = grain;
    fn_ = &fn;
    cursor_.store(begin, std::memory_order_relaxed);
    active_.store(static_cast<int>(n_workers - 1), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      // The pool may hold more threads than this run wants (a previous run
      // asked for a higher worker count): every thread wakes on the new
      // generation, but only indices below participants_ execute and
      // decrement active_ — the rest go straight back to sleep.
      participants_ = n_workers - 1;
      ++generation_;
    }
    cv_.notify_all();
    work();  // caller thread joins the computation
    // Wait for workers to finish this generation.
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [this] { return active_.load(std::memory_order_acquire) == 0; });
    fn_ = nullptr;
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void ensure_threads(std::size_t n) {
    while (threads_.size() < n) {
      threads_.emplace_back([this, idx = threads_.size(), my_gen = std::size_t{0}]() mutable {
        for (;;) {
          bool participate;
          {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_.wait(lk, [this, &my_gen] { return shutdown_ || generation_ != my_gen; });
            if (shutdown_) return;
            my_gen = generation_;
            participate = idx < participants_;
          }
          if (!participate) continue;  // this run wants fewer workers
          work();
          if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mutex_);
            done_cv_.notify_all();
          }
        }
      });
    }
  }

  void work() {
    const auto* fn = fn_;
    if (!fn) return;
    // Scope guard: restore the flag even if a body throws on the calling
    // thread, else that thread would silently run serial forever after.
    struct RegionFlag {
      bool saved = t_in_parallel_region;
      RegionFlag() { t_in_parallel_region = true; }
      ~RegionFlag() { t_in_parallel_region = saved; }
    } flag;
    for (;;) {
      std::size_t start = cursor_.fetch_add(grain_, std::memory_order_relaxed);
      if (start >= end_) break;
      std::size_t stop = std::min(end_, start + grain_);
      (*fn)(start, stop);
    }
  }

  std::mutex run_mutex_;  // serializes concurrent run() calls from different threads
  std::mutex mutex_;
  std::condition_variable cv_, done_cv_;
  std::vector<std::thread> threads_;
  std::size_t generation_ = 0;
  std::size_t participants_ = 0;  // pool threads taking part in the current run
  bool shutdown_ = false;

  std::size_t begin_ = 0, end_ = 0, grain_ = 1;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<int> active_{0};
};

}  // namespace

std::size_t worker_count() {
  std::size_t w = g_workers.load(std::memory_order_relaxed);
  return w == 0 ? default_workers() : w;
}

void set_worker_count(std::size_t n) { g_workers.store(n, std::memory_order_relaxed); }

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  // Nested parallelism degrades to serial: a task body that calls another
  // parallel primitive (e.g. sharded scoring invoking the parallel Hamming
  // scan) must not re-enter the pool its caller is blocked on.
  if (workers <= 1 || n < 2 * grain || t_in_parallel_region) {
    fn(begin, end);
    return;
  }
  Pool::instance().run(begin, end, grain, fn, workers);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

}  // namespace hdczsc::util
