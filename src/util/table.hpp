// Text table formatting for benchmark / experiment output.
//
// The benchmark harness reproduces the paper's tables; this helper renders
// aligned plain-text and CSV so each bench binary prints rows matching the
// paper's layout.
#pragma once

#include <string>
#include <vector>

namespace hdczsc::util {

/// Column-aligned text table with an optional title, renderable as
/// monospace text or CSV.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Set the header row (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width if a header is set.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  /// Format "mu ± sigma".
  static std::string mu_sigma(double mu, double sigma, int precision = 2);

  /// Render as aligned monospace text.
  std::string to_text() const;
  /// Render as CSV (RFC-4180 quoting for commas/quotes).
  std::string to_csv() const;

  /// Print the text rendering to stdout.
  void print() const;
  /// Write the CSV rendering to `path` (overwrites).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hdczsc::util
