#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hdczsc::util {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: row width " + std::to_string(row.size()) +
                                " != header width " + std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

std::string Table::mu_sigma(double mu, double sigma, int precision) {
  return num(mu, precision) + " ± " + num(sigma, precision);
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      oss << row[i];
      if (i + 1 < row.size())
        oss << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    oss << '\n';
  };
  if (!title_.empty()) oss << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      oss << csv_escape(row[i]);
      if (i + 1 < row.size()) oss << ',';
    }
    oss << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

void Table::print() const { std::fputs(to_text().c_str(), stdout); }

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot open " + path);
  f << to_csv();
}

}  // namespace hdczsc::util
