#include "util/config.hpp"

#include <cstdlib>

namespace hdczsc::util {

ArgMap::ArgMap(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::optional<std::string> ArgMap::lookup(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string ArgMap::get_str(const std::string& key, const std::string& fallback) const {
  auto v = lookup(key);
  return v ? *v : fallback;
}

long ArgMap::get_int(const std::string& key, long fallback) const {
  auto v = lookup(key);
  return v ? std::strtol(v->c_str(), nullptr, 10) : fallback;
}

double ArgMap::get_double(const std::string& key, double fallback) const {
  auto v = lookup(key);
  return v ? std::strtod(v->c_str(), nullptr) : fallback;
}

bool ArgMap::get_bool(const std::string& key, bool fallback) const {
  auto v = lookup(key);
  if (!v) return fallback;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

}  // namespace hdczsc::util
