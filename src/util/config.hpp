// Lightweight key=value configuration parsed from command-line arguments,
// used by example and benchmark binaries ("--epochs=10 --seeds=3 ...").
#pragma once

#include <map>
#include <optional>
#include <string>

namespace hdczsc::util {

/// Parses `--key=value` (and bare `--flag` as "1") arguments.
/// Unrecognized positional arguments are ignored.
class ArgMap {
 public:
  ArgMap() = default;
  ArgMap(int argc, char** argv);

  bool has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string get_str(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Raw lookup.
  std::optional<std::string> lookup(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace hdczsc::util
