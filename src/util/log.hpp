// Minimal leveled logging to stderr, controllable at runtime.
//
// Each line is stamped "[MM-DD HH:MM:SS.mmm] [LEVEL] [tNN] msg" — wall-clock
// timestamp plus a dense per-thread tag so interleaved worker-loop output
// (e.g. shape-mismatch warnings from several serving workers) can be
// attributed and correlated with slow-trace dumps.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

namespace hdczsc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Dense id of the calling thread (0, 1, 2, ... in first-log order); the
/// NN in the [tNN] log prefix.
std::size_t thread_tag();

/// Emit a message at `level` (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_args(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::format_args(std::forward<Args>(args)...));
}

}  // namespace hdczsc::util
