// Minimal leveled logging to stderr, controllable at runtime.
#pragma once

#include <sstream>
#include <string>

namespace hdczsc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_args(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::format_args(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::format_args(std::forward<Args>(args)...));
}

}  // namespace hdczsc::util
