// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (hypervector sampling, weight
// init, data synthesis, augmentation, shuffling) draws from an explicitly
// seeded Rng so that experiments are reproducible bit-for-bit across runs
// and the paper's five-seed µ±σ protocol can be followed exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace hdczsc::util {

/// xoshiro256** PRNG seeded through SplitMix64.
///
/// Small, fast, and high quality; `split()` derives an independent stream so
/// subsystems can be given their own generators without correlation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();
  /// Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_double()); }

  /// Uniform integer in [0, n) for n >= 1 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Rademacher sample: +1 or -1 with equal probability.
  int rademacher() { return (next_u64() >> 63) ? 1 : -1; }

  /// Bernoulli(p).
  bool bernoulli(double p) { return next_double() < p; }

  /// Derive an independent generator (splittable-stream style).
  Rng split();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hdczsc::util
