// Wall-clock timer used for reporting training/inference durations.
#pragma once

#include <chrono>

namespace hdczsc::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hdczsc::util
