#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace hdczsc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::size_t thread_tag() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

void log_message(LogLevel level, const std::string& msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count() %
      1000);
  std::tm tm{};
  localtime_r(&secs, &tm);
  const std::size_t tag = thread_tag();

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%02d-%02d %02d:%02d:%02d.%03d] [%s] [t%02zu] %s\n", tm.tm_mon + 1,
               tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec, millis, level_tag(level), tag,
               msg.c_str());
}

}  // namespace hdczsc::util
