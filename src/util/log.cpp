#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hdczsc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace hdczsc::util
