#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hdczsc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split() {
  // Use two words from this stream to seed a fresh generator.
  std::uint64_t seed = next_u64() ^ rotl(next_u64(), 31);
  return Rng(seed);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace hdczsc::util
