// Feature-generating WGAN, the canonical recipe of the generative ZSL
// family the paper compares against in Fig. 4 (f-CLSWGAN, Xian et al. 2018):
// a conditional generator G(z, a) synthesizes image-encoder features for a
// class signature a; a critic D(x, a) is trained Wasserstein-style (weight
// clipping); after training, features are generated for the *unseen*
// classes and a softmax classifier is fit on them, turning ZSL into
// supervised learning.
#pragma once

#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace hdczsc::baselines {

using nn::Tensor;

struct FeatureWganConfig {
  std::size_t z_dim = 16;
  std::size_t hidden = 64;
  std::size_t epochs = 15;
  std::size_t batch_size = 32;
  float lr = 1e-3f;
  int n_critic = 3;       ///< critic steps per generator step
  float clip = 0.03f;     ///< weight-clipping bound
  /// Weight of the class-conditional feature-matching term in the generator
  /// loss (||G(z,a) - mean(real features of class)||²). Plays the
  /// stabilizing role of f-CLSWGAN's auxiliary classification loss.
  float mean_match_weight = 0.5f;
  std::size_t n_syn_per_class = 40;
  std::size_t cls_epochs = 40;
  float cls_lr = 5e-2f;
  bool verbose = false;
};

class FeatureWgan {
 public:
  FeatureWgan(std::size_t feat_dim, std::size_t attr_dim, FeatureWganConfig cfg,
              util::Rng& rng);

  /// Train G/D on seen-class (feature, signature) pairs. labels index
  /// rows of `class_attrs`.
  void fit(const Tensor& features, const std::vector<std::size_t>& labels,
           const Tensor& class_attrs);

  /// Synthesize `per_class` features per row of `class_attrs`
  /// -> ([rows*per_class, d], labels).
  std::pair<Tensor, std::vector<std::size_t>> generate(const Tensor& class_attrs,
                                                       std::size_t per_class);

  /// Full ZSL protocol: generate unseen-class features, train a softmax
  /// classifier on them, return top-1 accuracy on real unseen features.
  double zsl_top1(const Tensor& unseen_features, const std::vector<std::size_t>& unseen_labels,
                  const Tensor& unseen_class_attrs);

  /// G + D parameter count (the generative overhead of Fig. 4).
  std::size_t parameter_count();

 private:
  std::size_t feat_dim_, attr_dim_;
  FeatureWganConfig cfg_;
  util::Rng rng_;

  // Generator: [z ‖ a] -> hidden -> feat (ReLU inside, linear out).
  nn::Linear g1_;
  nn::ReLU g_relu_;
  nn::Linear g2_;
  // Critic: [x ‖ a] -> hidden -> 1.
  nn::Linear d1_;
  nn::LeakyReLU d_relu_;
  nn::Linear d2_;

  Tensor gen_forward(const Tensor& za, bool train);
  Tensor gen_backward(const Tensor& grad);
  Tensor critic_forward(const Tensor& xa, bool train);
  Tensor critic_backward(const Tensor& grad);
  void clip_critic();
};

/// Concatenate two matrices column-wise: [n, a] ‖ [n, b] -> [n, a+b].
Tensor concat_cols(const Tensor& left, const Tensor& right);
/// Split gradient of a column-concat back into the two halves.
std::pair<Tensor, Tensor> split_cols(const Tensor& grad, std::size_t left_cols);

}  // namespace hdczsc::baselines
