#include "baselines/feature_wgan.hpp"

#include <numeric>

#include "nn/loss.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace hdczsc::baselines {

Tensor concat_cols(const Tensor& left, const Tensor& right) {
  if (left.dim() != 2 || right.dim() != 2 || left.size(0) != right.size(0))
    throw std::invalid_argument("concat_cols: need [n,a] and [n,b]");
  const std::size_t n = left.size(0), a = left.size(1), b = right.size(1);
  Tensor out({n, a + b});
  const float* L = left.data();
  const float* R = right.data();
  float* O = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < a; ++j) O[i * (a + b) + j] = L[i * a + j];
    for (std::size_t j = 0; j < b; ++j) O[i * (a + b) + a + j] = R[i * b + j];
  }
  return out;
}

std::pair<Tensor, Tensor> split_cols(const Tensor& grad, std::size_t left_cols) {
  const std::size_t n = grad.size(0), total = grad.size(1);
  if (left_cols > total) throw std::invalid_argument("split_cols: left_cols too large");
  Tensor l({n, left_cols}), r({n, total - left_cols});
  const float* G = grad.data();
  float* L = l.data();
  float* R = r.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < left_cols; ++j) L[i * left_cols + j] = G[i * total + j];
    for (std::size_t j = left_cols; j < total; ++j)
      R[i * (total - left_cols) + (j - left_cols)] = G[i * total + j];
  }
  return {l, r};
}

FeatureWgan::FeatureWgan(std::size_t feat_dim, std::size_t attr_dim, FeatureWganConfig cfg,
                         util::Rng& rng)
    : feat_dim_(feat_dim), attr_dim_(attr_dim), cfg_(cfg), rng_(rng.split()),
      g1_(cfg.z_dim + attr_dim, cfg.hidden, rng),
      g2_(cfg.hidden, feat_dim, rng),
      d1_(feat_dim + attr_dim, cfg.hidden, rng),
      d2_(cfg.hidden, 1, rng) {}

Tensor FeatureWgan::gen_forward(const Tensor& za, bool train) {
  Tensor h = g1_.forward(za, train);
  h = g_relu_.forward(h, train);
  return g2_.forward(h, train);
}

Tensor FeatureWgan::gen_backward(const Tensor& grad) {
  Tensor g = g2_.backward(grad);
  g = g_relu_.backward(g);
  return g1_.backward(g);
}

Tensor FeatureWgan::critic_forward(const Tensor& xa, bool train) {
  Tensor h = d1_.forward(xa, train);
  h = d_relu_.forward(h, train);
  return d2_.forward(h, train);
}

Tensor FeatureWgan::critic_backward(const Tensor& grad) {
  Tensor g = d2_.backward(grad);
  g = d_relu_.backward(g);
  return d1_.backward(g);
}

void FeatureWgan::clip_critic() {
  for (nn::Layer* l : std::initializer_list<nn::Layer*>{&d1_, &d2_}) {
    for (nn::Parameter* p : l->parameters()) {
      float* w = p->value.data();
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        if (w[i] > cfg_.clip) w[i] = cfg_.clip;
        if (w[i] < -cfg_.clip) w[i] = -cfg_.clip;
      }
    }
  }
}

void FeatureWgan::fit(const Tensor& features, const std::vector<std::size_t>& labels,
                      const Tensor& class_attrs) {
  if (features.dim() != 2 || features.size(1) != feat_dim_)
    throw std::invalid_argument("FeatureWgan::fit: bad feature shape");
  const std::size_t n = features.size(0);
  const std::size_t alpha = class_attrs.size(1);
  if (alpha != attr_dim_) throw std::invalid_argument("FeatureWgan::fit: bad attr dim");

  std::vector<nn::Parameter*> g_params = g1_.parameters();
  for (auto* p : g2_.parameters()) g_params.push_back(p);
  std::vector<nn::Parameter*> d_params = d1_.parameters();
  for (auto* p : d2_.parameters()) d_params.push_back(p);
  optim::Adam g_opt(g_params, cfg_.lr, 0.5f);
  optim::Adam d_opt(d_params, cfg_.lr, 0.5f);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Per-class feature means for the generator's matching term.
  const std::size_t n_cls = class_attrs.size(0);
  Tensor class_means({n_cls, feat_dim_});
  {
    std::vector<std::size_t> counts(n_cls, 0);
    const float* F = features.data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = labels[i];
      if (c >= n_cls) throw std::out_of_range("FeatureWgan::fit: label out of range");
      for (std::size_t j = 0; j < feat_dim_; ++j)
        class_means[c * feat_dim_ + j] += F[i * feat_dim_ + j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < n_cls; ++c)
      if (counts[c] > 0)
        for (std::size_t j = 0; j < feat_dim_; ++j)
          class_means[c * feat_dim_ + j] /= static_cast<float>(counts[c]);
  }

  auto gather = [&](const std::vector<std::size_t>& rows) {
    Tensor x({rows.size(), feat_dim_});
    Tensor a({rows.size(), attr_dim_});
    const float* F = features.data();
    const float* A = class_attrs.data();
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const std::size_t i = rows[k];
      std::copy(F + i * feat_dim_, F + (i + 1) * feat_dim_, x.data() + k * feat_dim_);
      const std::size_t c = labels[i];
      std::copy(A + c * attr_dim_, A + (c + 1) * attr_dim_, a.data() + k * attr_dim_);
    }
    return std::pair<Tensor, Tensor>{x, a};
  };

  int critic_round = 0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng_.shuffle(order);
    double w_dist = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start + 1 < n; start += cfg_.batch_size) {
      const std::size_t end = std::min(n, start + cfg_.batch_size);
      std::vector<std::size_t> rows(order.begin() + static_cast<long>(start),
                                    order.begin() + static_cast<long>(end));
      auto [x_real, a] = gather(rows);
      const std::size_t b = rows.size();

      // Sample z and generate fakes conditioned on the same signatures.
      Tensor z = Tensor::randn({b, cfg_.z_dim}, rng_);
      Tensor za = concat_cols(z, a);

      if (critic_round < cfg_.n_critic) {
        // Critic step: maximize E[D(real)] - E[D(fake)].
        Tensor x_fake = gen_forward(za, /*train=*/false);
        Tensor real_scores = critic_forward(concat_cols(x_real, a), true);
        Tensor g_real({b, 1}, -1.0f / static_cast<float>(b));  // d(-mean)/dscore
        d_opt.zero_grad();
        critic_backward(g_real);
        Tensor fake_scores = critic_forward(concat_cols(x_fake, a), true);
        Tensor g_fake({b, 1}, +1.0f / static_cast<float>(b));
        critic_backward(g_fake);
        d_opt.step();
        clip_critic();
        w_dist += real_scores.mean() - fake_scores.mean();
        ++batches;
        ++critic_round;
      } else {
        // Generator step: minimize -E[D(fake)] + λ E||fake - class_mean||².
        critic_round = 0;
        Tensor x_fake = gen_forward(za, /*train=*/true);
        Tensor fake_scores = critic_forward(concat_cols(x_fake, a), true);
        Tensor g_fake({b, 1}, -1.0f / static_cast<float>(b));
        g_opt.zero_grad();
        d_opt.zero_grad();  // discard critic grads from this pass
        Tensor g_xa = critic_backward(g_fake);
        auto [g_x, g_a] = split_cols(g_xa, feat_dim_);
        (void)g_a;
        if (cfg_.mean_match_weight > 0.0f) {
          const float scale = 2.0f * cfg_.mean_match_weight / static_cast<float>(b);
          float* G = g_x.data();
          const float* XF = x_fake.data();
          for (std::size_t k = 0; k < b; ++k) {
            const std::size_t c = labels[rows[k]];
            const float* m = class_means.data() + c * feat_dim_;
            for (std::size_t j = 0; j < feat_dim_; ++j)
              G[k * feat_dim_ + j] += scale * (XF[k * feat_dim_ + j] - m[j]);
          }
        }
        gen_backward(g_x);
        g_opt.step();
      }
    }
    if (cfg_.verbose && batches > 0)
      util::log_info("wgan epoch ", epoch + 1, "/", cfg_.epochs, " W-dist ",
                     w_dist / static_cast<double>(batches));
  }
}

std::pair<Tensor, std::vector<std::size_t>> FeatureWgan::generate(const Tensor& class_attrs,
                                                                  std::size_t per_class) {
  const std::size_t c = class_attrs.size(0);
  Tensor out({c * per_class, feat_dim_});
  std::vector<std::size_t> labels(c * per_class);
  for (std::size_t cls = 0; cls < c; ++cls) {
    Tensor z = Tensor::randn({per_class, cfg_.z_dim}, rng_);
    Tensor a({per_class, attr_dim_});
    const float* A = class_attrs.data();
    for (std::size_t k = 0; k < per_class; ++k)
      std::copy(A + cls * attr_dim_, A + (cls + 1) * attr_dim_, a.data() + k * attr_dim_);
    Tensor x = gen_forward(concat_cols(z, a), false);
    std::copy(x.data(), x.data() + per_class * feat_dim_,
              out.data() + cls * per_class * feat_dim_);
    for (std::size_t k = 0; k < per_class; ++k) labels[cls * per_class + k] = cls;
  }
  return {out, labels};
}

double FeatureWgan::zsl_top1(const Tensor& unseen_features,
                             const std::vector<std::size_t>& unseen_labels,
                             const Tensor& unseen_class_attrs) {
  auto [syn_x, syn_y] = generate(unseen_class_attrs, cfg_.n_syn_per_class);
  const std::size_t c = unseen_class_attrs.size(0);

  // Softmax classifier on synthetic features.
  util::Rng cls_rng = rng_.split();
  nn::Linear cls(feat_dim_, c, cls_rng);
  optim::Adam opt(cls.parameters(), cfg_.cls_lr);
  std::vector<std::size_t> order(syn_y.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < cfg_.cls_epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch_size) {
      const std::size_t end = std::min(order.size(), start + cfg_.batch_size);
      const std::size_t b = end - start;
      Tensor x({b, feat_dim_});
      std::vector<std::size_t> y(b);
      for (std::size_t k = 0; k < b; ++k) {
        const std::size_t i = order[start + k];
        std::copy(syn_x.data() + i * feat_dim_, syn_x.data() + (i + 1) * feat_dim_,
                  x.data() + k * feat_dim_);
        y[k] = syn_y[i];
      }
      Tensor logits = cls.forward(x, true);
      auto loss = nn::cross_entropy(logits, y);
      opt.zero_grad();
      cls.backward(loss.grad_logits);
      opt.step();
    }
  }

  Tensor logits = cls.forward(unseen_features, false);
  auto preds = tensor::argmax_rows(logits);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == unseen_labels[i]) ++hits;
  return unseen_labels.empty() ? 0.0
                               : static_cast<double>(hits) /
                                     static_cast<double>(unseen_labels.size());
}

std::size_t FeatureWgan::parameter_count() {
  std::size_t n = 0;
  for (nn::Layer* l : std::initializer_list<nn::Layer*>{&g1_, &g2_, &d1_, &d2_})
    for (nn::Parameter* p : l->parameters()) n += p->value.numel();
  return n;
}

}  // namespace hdczsc::baselines
