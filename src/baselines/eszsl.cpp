#include "baselines/eszsl.hpp"

#include <stdexcept>

#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace hdczsc::baselines {

void Eszsl::fit(const tensor::Tensor& features, const std::vector<std::size_t>& labels,
                const tensor::Tensor& signatures) {
  if (features.dim() != 2 || signatures.dim() != 2)
    throw std::invalid_argument("Eszsl::fit: features [N,d] and signatures [C,alpha] required");
  const std::size_t n = features.size(0), d = features.size(1);
  const std::size_t c = signatures.size(0), alpha = signatures.size(1);
  if (labels.size() != n) throw std::invalid_argument("Eszsl::fit: label count mismatch");

  // Y ∈ {-1, +1}^{N×C}.
  tensor::Tensor y({n, c}, -1.0f);
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] >= c) throw std::out_of_range("Eszsl::fit: label out of range");
    y[i * c + labels[i]] = 1.0f;
  }

  // Left factor: (XᵀX + γI)⁻¹ (SPD).
  tensor::Tensor xtx = tensor::matmul_tn(features, features);  // [d, d]
  for (std::size_t i = 0; i < d; ++i) xtx[i * d + i] += cfg_.gamma;

  // Right factor: (SᵀS + λI)⁻¹ (SPD).
  tensor::Tensor sts = tensor::matmul_tn(signatures, signatures);  // [alpha, alpha]
  for (std::size_t i = 0; i < alpha; ++i) sts[i * alpha + i] += cfg_.lambda;

  // Middle: Xᵀ Y S  [d, alpha].
  tensor::Tensor xty = tensor::matmul_tn(features, y);   // [d, C]
  tensor::Tensor mid = tensor::matmul(xty, signatures);  // [d, alpha]

  // V = solve(xtx, mid) * inv(sts)  -> solve twice to avoid explicit inverses.
  tensor::Tensor left = tensor::solve_spd(xtx, mid);  // [d, alpha]
  // Right-multiply by inv(sts): solve sts Zᵀ = leftᵀ.
  tensor::Tensor zt = tensor::solve_spd(sts, tensor::transpose(left));  // [alpha, d]
  v_ = tensor::transpose(zt);                                           // [d, alpha]
}

tensor::Tensor Eszsl::scores(const tensor::Tensor& features,
                             const tensor::Tensor& signatures) const {
  if (!fitted()) throw std::logic_error("Eszsl::scores called before fit");
  tensor::Tensor xv = tensor::matmul(features, v_);       // [N, alpha]
  return tensor::matmul_nt(xv, signatures);               // [N, C']
}

}  // namespace hdczsc::baselines
