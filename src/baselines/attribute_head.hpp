// Direct attribute-prediction baselines for the Table I comparison:
//
//  * "finetag"-style: a plain FC head over backbone features producing α
//    sigmoid logits, trained with (unweighted) BCE — multi-attribute
//    tagging at fine-grained level (Zakizadeh et al. 2018).
//  * "a3m"-style: per-group softmax heads trained with per-group cross
//    entropy — attribute-aware attention-free stand-in for Han et al. 2018.
//
// Both predict attributes *without* the HDC dictionary; contrasting them
// with HDC-ZSC's phase-II head reproduces the Table I comparison.
#pragma once

#include "core/image_encoder.hpp"
#include "core/trainer.hpp"
#include "nn/loss.hpp"

namespace hdczsc::baselines {

struct AttributeHeadConfig {
  std::string variant = "finetag";  ///< "finetag" | "a3m"
  core::ImageEncoderConfig image;   ///< projection unused; head sits on features
};

class AttributeHeadBaseline {
 public:
  AttributeHeadBaseline(const data::AttributeSpace& space, const AttributeHeadConfig& cfg,
                        util::Rng& rng);

  /// Train on a loader; returns final mean epoch loss.
  double train(data::DataLoader& loader, const core::TrainConfig& cfg);

  /// Attribute scores [N, α] for a stack of images.
  core::Tensor predict(const core::Tensor& images);

  /// Table-I metrics on a held-out loader.
  core::AttributeEvalResult evaluate(const data::DataLoader& test);

  std::size_t parameter_count();
  const std::string& variant() const { return variant_; }

 private:
  const data::AttributeSpace* space_;
  std::string variant_;
  core::ImageEncoder encoder_;
  nn::Linear head_;

  /// Per-group softmax cross entropy (the a3m variant's loss).
  nn::LossResult per_group_ce(const core::Tensor& logits, const core::Tensor& targets) const;
};

}  // namespace hdczsc::baselines
