// ESZSL (Romera-Paredes & Torr, ICML'15): the "embarrassingly simple"
// closed-form bilinear zero-shot learner the paper compares against in
// Fig. 4. Given features X ∈ R^{N×d}, one-hot(±1) labels Y ∈ R^{N×C} and
// class signatures S ∈ R^{C×α}, the compatibility matrix is
//
//   V = (XᵀX + γI)⁻¹ Xᵀ Y S (SᵀS + λI)⁻¹  ∈ R^{d×α}
//
// and an unseen-class score is x V sᵀ_c.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace hdczsc::baselines {

struct EszslConfig {
  float gamma = 1.0f;   ///< feature-space regularizer
  float lambda = 1.0f;  ///< attribute-space regularizer
};

class Eszsl {
 public:
  explicit Eszsl(EszslConfig cfg = {}) : cfg_(cfg) {}

  /// Solve for V on the seen classes. labels are local ids into
  /// `signatures` rows.
  void fit(const tensor::Tensor& features, const std::vector<std::size_t>& labels,
           const tensor::Tensor& signatures);

  /// Class scores [N, C'] for (possibly unseen) class signatures.
  tensor::Tensor scores(const tensor::Tensor& features,
                        const tensor::Tensor& signatures) const;

  const tensor::Tensor& compatibility() const { return v_; }
  bool fitted() const { return !v_.empty(); }
  /// Learned-parameter count (the bilinear map only; feature extractor
  /// accounted separately in Fig. 4).
  std::size_t param_count() const { return v_.numel(); }

 private:
  EszslConfig cfg_;
  tensor::Tensor v_;  // [d, α]
};

}  // namespace hdczsc::baselines
