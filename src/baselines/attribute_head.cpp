#include "baselines/attribute_head.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "optim/optimizer.hpp"
#include "optim/scheduler.hpp"
#include "util/log.hpp"

namespace hdczsc::baselines {

namespace {
core::ImageEncoderConfig strip_projection(core::ImageEncoderConfig cfg) {
  cfg.use_projection = false;  // the head replaces the projection
  return cfg;
}
}  // namespace

AttributeHeadBaseline::AttributeHeadBaseline(const data::AttributeSpace& space,
                                             const AttributeHeadConfig& cfg, util::Rng& rng)
    : space_(&space),
      variant_(cfg.variant),
      encoder_(strip_projection(cfg.image), rng),
      head_(encoder_.backbone_feature_dim(), space.n_attributes(), rng) {
  if (variant_ != "finetag" && variant_ != "a3m")
    throw std::invalid_argument("AttributeHeadBaseline: unknown variant '" + variant_ + "'");
}

nn::LossResult AttributeHeadBaseline::per_group_ce(const core::Tensor& logits,
                                                   const core::Tensor& targets) const {
  const std::size_t n = logits.size(0), alpha = logits.size(1);
  nn::LossResult res;
  res.grad_logits = core::Tensor(logits.shape());
  const float* L = logits.data();
  const float* T = targets.data();
  float* G = res.grad_logits.data();
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(n * space_->n_groups());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t g = 0; g < space_->n_groups(); ++g) {
      const auto& grp = space_->group(g);
      const std::size_t off = grp.attr_offset, w = grp.value_ids.size();
      const float* lrow = L + i * alpha + off;
      const float* trow = T + i * alpha + off;
      // Ground truth = argmax of targets within the group.
      std::size_t truth = 0;
      for (std::size_t k = 1; k < w; ++k)
        if (trow[k] > trow[truth]) truth = k;
      // Stable softmax CE over the group slice.
      float mx = lrow[0];
      for (std::size_t k = 1; k < w; ++k) mx = std::max(mx, lrow[k]);
      double denom = 0.0;
      for (std::size_t k = 0; k < w; ++k) denom += std::exp(lrow[k] - mx);
      loss += -(lrow[truth] - mx - std::log(denom));
      float* grow = G + i * alpha + off;
      for (std::size_t k = 0; k < w; ++k) {
        const double p = std::exp(lrow[k] - mx) / denom;
        grow[k] = static_cast<float>((p - (k == truth ? 1.0 : 0.0)) * inv);
      }
    }
  }
  res.value = static_cast<float>(loss * inv);
  return res;
}

double AttributeHeadBaseline::train(data::DataLoader& loader, const core::TrainConfig& cfg) {
  auto params = encoder_.parameters();
  for (auto* p : head_.parameters()) params.push_back(p);
  optim::AdamW opt(params, cfg.lr, cfg.weight_decay);
  optim::CosineAnnealingLR sched(opt, static_cast<long>(cfg.epochs));

  double mean_loss = 0.0;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    loader.reset_epoch();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (auto batch = loader.next()) {
      core::Tensor feats = encoder_.forward(batch->images, true);
      core::Tensor logits = head_.forward(feats, true);
      nn::LossResult loss = variant_ == "a3m"
                                ? per_group_ce(logits, batch->instance_attributes)
                                : nn::weighted_bce_with_logits(logits,
                                                               batch->instance_attributes);
      opt.zero_grad();
      core::Tensor g = head_.backward(loss.grad_logits);
      encoder_.backward(g);
      opt.clip_grad_norm(cfg.clip_norm);
      opt.step();
      loss_sum += loss.value;
      ++batches;
    }
    sched.step();
    mean_loss = batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    if (cfg.verbose)
      util::log_info("attribute-head(", variant_, ") epoch ", epoch + 1, "/", cfg.epochs,
                     " loss ", mean_loss);
  }
  return mean_loss;
}

core::Tensor AttributeHeadBaseline::predict(const core::Tensor& images) {
  core::Tensor feats = encoder_.forward(images, false);
  return head_.forward(feats, false);
}

core::AttributeEvalResult AttributeHeadBaseline::evaluate(const data::DataLoader& test) {
  data::Batch batch = test.all_eval();
  core::Tensor scores = predict(batch.images);
  core::AttributeEvalResult res;
  res.per_group_top1 = metrics::per_group_top1(scores, batch.instance_attributes, *space_);
  res.per_group_wmap = metrics::per_group_wmap(scores, batch.instance_attributes, *space_);
  res.mean_top1 = metrics::mean_of(res.per_group_top1);
  res.mean_wmap = metrics::mean_of(res.per_group_wmap);
  return res;
}

std::size_t AttributeHeadBaseline::parameter_count() {
  std::size_t n = head_.parameter_count();
  for (auto* p : encoder_.parameters()) n += p->value.numel();
  return n;
}

}  // namespace hdczsc::baselines
