// Ablation (beyond the paper's tables, motivated by its §V outlook and the
// cited Schmuck et al. hardware work): replace the float class embeddings
// ϕ = A × B with fully-binary class prototypes sign(Σ round(L·A[c,x])·b_x),
// and run inference as Hamming lookups in a combinational associative
// memory. Question answered: how much ZSC accuracy does the all-binary
// edge-inference path give up, as a function of the quantization level L?
//
//   ./bench_ablation_binary_prototypes [--classes=32]
#include <cstdio>

#include "core/pipeline.hpp"
#include "hdc/encoding.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  util::Timer timer;

  // Train one HDC-ZSC model with the standard recipe.
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = n_classes;
  dcfg.images_per_class = 8;
  dcfg.image_size = 32;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);
  auto split = data::make_zs_split(n_classes, n_classes * 3 / 4, seed);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  data::DataLoader train(dataset, split.train_classes, 0, 6, 16, true, no_aug, seed);
  data::DataLoader test(dataset, split.test_classes, 0, 8, 16, false, no_aug, seed);

  core::ZscModelConfig mcfg;  // micro_flat + d=256 + HDC encoder defaults
  util::Rng rng(seed);
  auto model = core::make_zsc_model(mcfg, space, rng);
  core::Trainer trainer(seed);
  core::TrainConfig p2{8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  core::TrainConfig p3{10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  trainer.phase2_attribute_extraction(*model, train, p2);
  trainer.phase3_zsc(*model, train, p3);

  // Reference: float ϕ = A × B cosine inference.
  const auto float_res = trainer.evaluate_zsc(*model, test);

  // Binary path: embeddings are sign-binarized, class prototypes are
  // binarized weighted bundles, inference is Hamming nearest-prototype.
  data::Batch batch = test.all_eval();
  nn::Tensor e = model->image_encoder().forward(batch.images, false);
  auto* hdc_enc = dynamic_cast<core::HdcAttributeEncoder*>(&model->attribute_encoder());
  const auto& dict = hdc_enc->dictionary();

  auto binarize_row = [&](const float* row, std::size_t d) {
    hdc::BinaryHV hv(d);
    for (std::size_t i = 0; i < d; ++i) hv.set(i, row[i] < 0.0f);
    return hv;
  };

  util::Table table("binary-prototype ablation — ZSC top-1 (%), unseen classes");
  table.set_header({"inference path", "quant levels L", "top-1 (%)", "class storage (B)"});
  table.add_row({"float phi = A x B, cosine", "-",
                 util::Table::num(100.0 * float_res.top1, 1),
                 std::to_string(test.n_classes() * model->dim() * sizeof(float))});

  const std::size_t d = model->dim();
  for (std::size_t quant : {1u, 2u, 4u, 8u, 16u}) {
    util::Rng prng(seed + quant);
    auto protos =
        hdc::class_prototypes(dict, test.class_attribute_rows(), quant, prng);
    hdc::AssociativeMemory mem(protos);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      hdc::BinaryHV q = binarize_row(e.data() + i * d, d);
      if (mem.nearest(q) == batch.labels[i]) ++hits;
    }
    const double acc = static_cast<double>(hits) / static_cast<double>(batch.labels.size());
    table.add_row({"binary prototypes, Hamming", std::to_string(quant),
                   util::Table::num(100.0 * acc, 1), std::to_string(mem.storage_bytes())});
  }
  table.print();

  std::printf("\nreading: the all-binary path (sign-embeddings + bundled prototypes +\n"
              "XOR/popcount inference) trades accuracy for a %zux smaller class memory\n"
              "and the exact operation set of the paper's cited HDC accelerators;\n"
              "coarser quantization (small L) degrades gracefully.\n",
              sizeof(float) * 8 / 1);
  std::printf("wall time: %.1f s\n", timer.seconds());
  return 0;
}
