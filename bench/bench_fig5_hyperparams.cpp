// Fig. 5 — hyper-parameter exploration for HDC-ZSC on the validation split
// (disjoint validation classes carved from the ZS train classes): 1-D
// sweeps of batch size, epochs, learning rate, temperature scale and weight
// decay around a default point, reporting top-1 accuracy. The paper's
// qualitative findings under test: accuracy peaks around ~10 epochs,
// extreme learning rates (1e-6, 1e-2) and extreme temperatures degrade
// accuracy, and weight decay is relatively flat.
//
//   ./bench_fig5_hyperparams [--classes=12] [--full]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using hdczsc::core::PipelineConfig;

PipelineConfig base_config(std::size_t n_classes) {
  PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 8;
  cfg.train_instances = 6;
  cfg.image_size = 32;
  cfg.split = "val";  // Fig. 5: validation split of disjoint classes
  cfg.zs_train_classes = n_classes * 3 / 4;
  cfg.val_classes = n_classes / 4;
  cfg.model.image.arch = "resnet_micro_flat";
  cfg.model.image.proj_dim = 256;
  cfg.model.temp_scale = 4.0f;
  cfg.run_phase1 = false;  // sweep cost control; phase II supplies maturity
  cfg.phase2 = {4, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.phase3 = {10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  return cfg;
}

double run(const PipelineConfig& cfg) {
  return 100.0 * hdczsc::core::run_pipeline(cfg).zsc.top1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const bool full = args.get_bool("full", false);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", full ? 20 : 12));
  util::Timer timer;
  PipelineConfig base = base_config(n_classes);

  // --- epochs sweep (paper: {3, 10, 30, 100}, peak near 10) -----------------
  {
    util::Table t("Fig. 5a — epochs sweep (paper sweeps {3,10,30,100}; peak ~10)");
    t.set_header({"epochs", "top-1 (%)"});
    for (std::size_t e : {1u, 3u, 10u, 30u}) {
      PipelineConfig cfg = base;
      cfg.phase3.epochs = e;
      t.add_row({std::to_string(e), util::Table::num(run(cfg), 1)});
    }
    t.print();
  }

  // --- batch size sweep (paper: {4, 8, 16, 32}) -------------------------------
  {
    util::Table t("Fig. 5b — batch size sweep (paper sweeps {4,8,16,32})");
    t.set_header({"batch size", "top-1 (%)"});
    for (std::size_t b : {4u, 8u, 16u, 32u}) {
      PipelineConfig cfg = base;
      cfg.phase3.batch_size = b;
      t.add_row({std::to_string(b), util::Table::num(run(cfg), 1)});
    }
    t.print();
  }

  // --- learning rate sweep (paper: {1e-6, 1e-3, 0.01}; mid value best) -------
  // The sweep is run around this reproduction's operating point; the paper
  // axis value each point corresponds to is printed alongside.
  {
    util::Table t("Fig. 5c — learning rate sweep (paper: too-low underfits, too-high "
                  "degrades; mid best)");
    t.set_header({"lr (ours)", "lr (paper axis)", "top-1 (%)"});
    const std::pair<float, const char*> points[] = {
        {1e-5f, "1e-6"}, {1e-2f, "1e-3"}, {3e-1f, "0.01"}};
    for (auto [lr, paper] : points) {
      PipelineConfig cfg = base;
      cfg.phase3.lr = lr;
      cfg.phase2.lr = lr;
      t.add_row({util::Table::num(lr, 5), paper, util::Table::num(run(cfg), 1)});
    }
    t.print();
  }

  // --- temperature scale sweep (paper: {7e-4, 0.03, 0.7}; mid value best) -----
  {
    util::Table t("Fig. 5d — temperature scale sweep (paper: extremes degrade; mid best)");
    t.set_header({"temp scale (ours)", "temp scale (paper axis)", "top-1 (%)"});
    const std::pair<float, const char*> points[] = {
        {0.05f, "7e-4"}, {4.0f, "0.03"}, {256.0f, "0.7"}};
    for (auto [s, paper] : points) {
      PipelineConfig cfg = base;
      cfg.model.temp_scale = s;
      t.add_row({util::Table::num(s, 3), paper, util::Table::num(run(cfg), 1)});
    }
    t.print();
  }

  // --- weight decay sweep (paper: {0, 1e-4, 0.01}) ----------------------------
  {
    util::Table t("Fig. 5e — weight decay sweep (paper: {0, 1e-4, 0.01}, flat)");
    t.set_header({"weight decay", "top-1 (%)"});
    for (float wd : {0.0f, 1e-4f, 1e-2f}) {
      PipelineConfig cfg = base;
      cfg.phase3.weight_decay = wd;
      t.add_row({util::Table::num(wd, 4), util::Table::num(run(cfg), 1)});
    }
    t.print();
  }

  std::printf("wall time: %.1f s\n", timer.seconds());
  return 0;
}
