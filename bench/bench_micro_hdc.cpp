// Micro-benchmarks of the HDC primitives: bind/bundle/similarity in both
// bipolar (int8 multiply) and packed-binary (XOR + popcount) forms — the
// operations the paper offloads to non-von-Neumann accelerators (§V).
#include <benchmark/benchmark.h>

#include "data/attribute_space.hpp"
#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"

namespace {

using namespace hdczsc;

void BM_BipolarBind(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  auto a = hdc::BipolarHV::random(d, rng);
  auto b = hdc::BipolarHV::random(d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.bind(b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(d));
}
BENCHMARK(BM_BipolarBind)->Arg(512)->Arg(1536)->Arg(8192);

void BM_BinaryBind(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  auto a = hdc::BinaryHV::random(d, rng);
  auto b = hdc::BinaryHV::random(d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.bind(b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(d));
}
BENCHMARK(BM_BinaryBind)->Arg(512)->Arg(1536)->Arg(8192);

void BM_BipolarCosine(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  auto a = hdc::BipolarHV::random(d, rng);
  auto b = hdc::BipolarHV::random(d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.cosine(b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(d));
}
BENCHMARK(BM_BipolarCosine)->Arg(512)->Arg(1536)->Arg(8192);

void BM_BinaryHammingSimilarity(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  auto a = hdc::BinaryHV::random(d, rng);
  auto b = hdc::BinaryHV::random(d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.similarity(b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(d));
}
BENCHMARK(BM_BinaryHammingSimilarity)->Arg(512)->Arg(1536)->Arg(8192);

void BM_Bundle(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 1536;
  util::Rng rng(5);
  std::vector<hdc::BipolarHV> items;
  for (std::size_t i = 0; i < k; ++i) items.push_back(hdc::BipolarHV::random(d, rng));
  for (auto _ : state) {
    hdc::BundleAccumulator acc(d);
    for (const auto& hv : items) acc.add(hv);
    benchmark::DoNotOptimize(acc.finalize(rng));
  }
}
BENCHMARK(BM_Bundle)->Arg(4)->Arg(16)->Arg(64);

void BM_HammingMany(benchmark::State& state) {
  // The serving hot path: one query vs. a whole packed prototype matrix in
  // a single contiguous XOR+popcount sweep (hdc::hamming_many_packed).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  util::Rng rng(11);
  auto query = hdc::BinaryHV::random(d, rng);
  const std::size_t words = query.words().size();
  std::vector<std::uint64_t> rows(n * words);
  for (auto& w : rows) w = rng.next_u64();
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    hdc::hamming_many_packed(query.words().data(), rows.data(), n, words, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(n * d));
}
BENCHMARK(BM_HammingMany)->Args({50, 256})->Args({200, 256})->Args({200, 2048})->Args({1000, 1536});

void BM_HammingManyVsLoop(benchmark::State& state) {
  // Baseline for BM_HammingMany: the same scan through the one-pair
  // BinaryHV::hamming API (per-row dispatch, no contiguous layout).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = static_cast<std::size_t>(state.range(1));
  util::Rng rng(12);
  auto query = hdc::BinaryHV::random(d, rng);
  std::vector<hdc::BinaryHV> protos;
  for (std::size_t i = 0; i < n; ++i) protos.push_back(hdc::BinaryHV::random(d, rng));
  std::vector<std::size_t> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = query.hamming(protos[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(n * d));
}
BENCHMARK(BM_HammingManyVsLoop)->Args({200, 256})->Args({200, 2048});

void BM_AssociativeLookup(benchmark::State& state) {
  // Nearest-item search over a codebook of `n` entries at d=1536 — the
  // inference primitive of the attribute-extraction head.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  hdc::Codebook cb(n, 1536, rng);
  auto query = hdc::BipolarHV::random(1536, rng);
  for (auto _ : state) benchmark::DoNotOptimize(cb.nearest(query));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(n));
}
BENCHMARK(BM_AssociativeLookup)->Arg(61)->Arg(312);

void BM_DictionaryMaterialization(benchmark::State& state) {
  // Rematerializing the full 312 x d dictionary from the two codebooks
  // (the "on the fly" binding of §III-A).
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  auto space = data::AttributeSpace::cub();
  hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dict.dictionary_tensor());
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 312 *
                          static_cast<long>(d));
}
BENCHMARK(BM_DictionaryMaterialization)->Arg(256)->Arg(1536);

}  // namespace
