// Open-loop network-serving load generator for the HDCN wire protocol
// (docs/protocol.md): the serving stack's end-to-end latency/goodput bench.
//
// Unlike the in-process serving storms (bench_serving_throughput), requests
// here arrive as a *Poisson process at a fixed offered rate*, independent
// of how fast the server answers — the open-loop discipline that actually
// exposes tail latency and overload behaviour (a closed loop self-throttles
// and hides both). The bench
//
//   1. calibrates peak loopback throughput with a pipelined burst,
//   2. sweeps offered load (fractions of the calibrated peak, or an
//      explicit --rates=r1,r2,... list) measuring achieved rate, goodput,
//      p50/p99/p999 client-observed latency and the status mix,
//   3. pushes past the peak into overload and checks that admission
//      control answers with named kOverloaded rejections (bounded queue →
//      fast rejects, not collapse), and
//   4. (self-hosted mode) asserts the network-served top-k is bit-identical
//      to in-process InferenceEngine::topk_batch on BOTH scoring paths.
//
// Self-hosted (default): trains a small model (or --snapshot=model.hdcsnap),
// registers it under float + binary keys and serves it from an in-process
// NetServer over loopback. Against a live server: --connect=HOST:PORT
// [--key=m0] [--dim=256] (embeddings are random; only transport/latency is
// scored, not accuracy).
//
// --input=embedding (default) streams [d] embedding requests — the wire +
// batching + scoring path. --input=image streams [3,S,S] images through
// the CNN embed stage as well (far lower peak on a small host).
//
// Gates for CI: --min-goodput=R fails the run when the best sustained
// goodput is below R req/s; --require-zero-transport fails it on any
// transport error anywhere in the sweep. --json=BENCH_netserve.json writes
// the artifact.
//
//   ./bench_netserve [--connect=HOST:PORT] [--input=embedding|image]
//                    [--connections=2] [--duration=1.5] [--rates=...]
//                    [--k=1] [--queue-depth=1024] [--batch=16]
//                    [--json=BENCH_netserve.json] [--min-goodput=0]
//                    [--require-zero-transport] [--seed=1]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/model_registry.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

namespace {

using Clock = std::chrono::steady_clock;

/// Copy row `i` of a [P, ...] pool into its own request tensor (shared
/// storage — requests only read the input).
nn::Tensor slice_row(const nn::Tensor& pool, std::size_t i) {
  tensor::Shape shape(pool.shape().begin() + 1, pool.shape().end());
  std::size_t per = 1;
  for (std::size_t s : shape) per *= s;
  nn::Tensor out(shape);
  std::copy(pool.data() + i * per, pool.data() + (i + 1) * per, out.data());
  return out;
}

/// In-flight (send-time, future) pairs handed from the paced generator to
/// the drain thread of one connection.
struct Pending {
  Clock::time_point sent;
  std::future<serve::InferResult> fut;
};

struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> q;
  bool closed = false;

  void push(Pending p) {
    {
      std::lock_guard<std::mutex> guard(mu);
      q.push_back(std::move(p));
    }
    cv.notify_one();
  }
  bool pop(Pending& out) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !q.empty() || closed; });
    if (q.empty()) return false;
    out = std::move(q.front());
    q.pop_front();
    return true;
  }
  void close() {
    {
      std::lock_guard<std::mutex> guard(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

struct LoadPoint {
  double offered_rps = 0.0;   ///< target arrival rate of the Poisson process
  double achieved_rps = 0.0;  ///< what the generator actually sent
  double goodput_rps = 0.0;   ///< kOk responses per wall second
  std::size_t sent = 0, ok = 0, rejected = 0, transport = 0, other = 0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0, max_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// One open-loop measurement: `n_conns` connections, each with a paced
/// generator thread (exponential inter-arrivals at offered/n_conns) and a
/// drain thread recording client-observed completion latency. Arrivals the
/// generator falls behind on are sent immediately (open loop: the schedule
/// never waits for the server).
LoadPoint run_open_loop(const std::string& host, std::uint16_t port, const std::string& key,
                        const std::vector<nn::Tensor>& inputs, std::size_t k,
                        double offered_rps, double duration_s, std::size_t n_conns,
                        std::uint64_t seed) {
  struct ConnStats {
    std::vector<double> lat_ms;
    std::size_t sent = 0, ok = 0, rejected = 0, transport = 0, other = 0;
  };
  std::vector<ConnStats> stats(n_conns);
  std::vector<std::thread> threads;
  util::Timer wall;
  for (std::size_t c = 0; c < n_conns; ++c) {
    threads.emplace_back([&, c] {
      ConnStats& st = stats[c];
      net::NetClient client(host, port);
      Channel channel;
      std::thread drain([&] {
        Pending p;
        while (channel.pop(p)) {
          const serve::InferResult r = p.fut.get();
          const double ms =
              1e3 * std::chrono::duration<double>(Clock::now() - p.sent).count();
          switch (r.status) {
            case serve::InferStatus::kOk:
              ++st.ok;
              st.lat_ms.push_back(ms);
              break;
            case serve::InferStatus::kOverloaded:
              ++st.rejected;
              break;
            case serve::InferStatus::kTransport:
              ++st.transport;
              break;
            default:
              ++st.other;
          }
        }
      });

      util::Rng rng(seed + 0x9E37ULL * (c + 1));
      const double rate = offered_rps / static_cast<double>(n_conns);
      const Clock::time_point t0 = Clock::now();
      double next_s = 0.0;
      for (;;) {
        next_s += -std::log(1.0 - rng.next_double()) / rate;
        if (next_s >= duration_s) break;
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(next_s)));
        serve::InferRequest req;
        req.model_key = key;
        req.input = inputs[(st.sent * n_conns + c) % inputs.size()];
        req.k = k;
        const Clock::time_point sent_at = Clock::now();
        Pending p{sent_at, client.submit(std::move(req))};
        channel.push(std::move(p));
        ++st.sent;
      }
      channel.close();
      drain.join();
      client.close();
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = wall.seconds();

  LoadPoint point;
  point.offered_rps = offered_rps;
  std::vector<double> lat;
  for (const auto& st : stats) {
    point.sent += st.sent;
    point.ok += st.ok;
    point.rejected += st.rejected;
    point.transport += st.transport;
    point.other += st.other;
    lat.insert(lat.end(), st.lat_ms.begin(), st.lat_ms.end());
  }
  point.achieved_rps = static_cast<double>(point.sent) / duration_s;
  point.goodput_rps = static_cast<double>(point.ok) / elapsed;
  std::sort(lat.begin(), lat.end());
  point.p50_ms = percentile(lat, 0.50);
  point.p99_ms = percentile(lat, 0.99);
  point.p999_ms = percentile(lat, 0.999);
  point.max_ms = lat.empty() ? 0.0 : lat.back();
  return point;
}

/// Pipelined closed-window burst: an upper-bound throughput estimate used
/// to place the open-loop sweep points.
double calibrate_peak(const std::string& host, std::uint16_t port, const std::string& key,
                      const std::vector<nn::Tensor>& inputs, std::size_t k,
                      std::size_t n_requests) {
  net::NetClient client(host, port);
  util::Timer t;
  std::vector<std::future<serve::InferResult>> inflight;
  inflight.reserve(128);
  for (std::size_t i = 0; i < n_requests; ++i) {
    serve::InferRequest req;
    req.model_key = key;
    req.input = inputs[i % inputs.size()];
    req.k = k;
    inflight.push_back(client.submit(std::move(req)));
    if (inflight.size() >= 128) {
      for (auto& f : inflight) f.get();
      inflight.clear();
    }
  }
  for (auto& f : inflight) f.get();
  const double rps = static_cast<double>(n_requests) / t.seconds();
  client.close();
  return rps;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::string input_kind = args.get_str("input", "embedding");
  if (input_kind != "embedding" && input_kind != "image") {
    std::fprintf(stderr, "bench_netserve: unknown --input=%s (embedding|image)\n",
                 input_kind.c_str());
    return 2;
  }
  const std::size_t n_conns =
      static_cast<std::size_t>(std::max<long>(1, args.get_int("connections", 2)));
  const double duration_s = args.get_double("duration", 1.5);
  const std::size_t topk = static_cast<std::size_t>(std::max<long>(1, args.get_int("k", 1)));
  const double min_goodput = args.get_double("min-goodput", 0.0);
  const bool require_zero_transport = args.has("require-zero-transport");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  util::Timer total_wall;

  // -- 1. a server to load: external (--connect) or self-hosted --------------
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string key = args.get_str("key", "m0");
  std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 256));
  std::size_t image_size = 32;

  std::shared_ptr<const serve::ModelSnapshot> snapshot;
  std::unique_ptr<serve::ModelRegistry> registry;
  std::unique_ptr<net::NetServer> server;
  const bool self_hosted = !args.has("connect");
  std::string binary_key, float_key;
  if (self_hosted) {
    if (args.has("snapshot")) {
      snapshot = serve::load_snapshot_file(args.get_str("snapshot", ""));
      std::printf("loaded snapshot: %zu classes, d=%zu\n", snapshot->n_classes(),
                  snapshot->dim());
    } else {
      core::PipelineConfig cfg;
      cfg.n_classes = static_cast<std::size_t>(args.get_int("classes", 16));
      cfg.images_per_class = 4;
      cfg.train_instances = 3;
      cfg.image_size = 32;
      cfg.split = "zs";
      cfg.zs_train_classes = cfg.n_classes / 2;
      cfg.model.image.proj_dim = dim;
      cfg.run_phase1 = false;
      cfg.run_phase2 = false;
      cfg.phase3 = {2, 16, 1e-2f, 1e-4f, 5.0f, true, false};
      cfg.augment.enabled = false;
      cfg.seed = seed;
      std::printf("training a %zu-class model (d=%zu)...\n", cfg.n_classes, dim);
      auto tp = core::run_pipeline_trained(cfg);
      // Expansion 1 = direct d-bit sign codes: no per-query LSH projection,
      // the high-throughput serving configuration (x8 codes buy cosine
      // fidelity at ~2 orders of magnitude more encode work per query).
      const std::size_t expansion =
          static_cast<std::size_t>(std::max<long>(1, args.get_int("expansion", 1)));
      snapshot = std::make_shared<const serve::ModelSnapshot>(
          tp.model, tp.test_class_attributes, expansion, /*shards=*/1);
    }
    dim = snapshot->dim();
    image_size = static_cast<std::size_t>(args.get_int("image-size", 32));

    serve::ServerConfig scfg;
    scfg.n_workers = static_cast<std::size_t>(args.get_int("workers", 1));
    scfg.batch.max_batch = static_cast<std::size_t>(args.get_int("batch", 16));
    scfg.batch.max_delay_ms = args.get_double("delay-ms", 0.5);
    scfg.batch.max_queue_depth =
        static_cast<std::size_t>(args.get_int("queue-depth", 1024));
    registry = std::make_unique<serve::ModelRegistry>(scfg);
    binary_key = "bench.binary";
    float_key = "bench.float";
    registry->load(binary_key, snapshot, serve::ScoringMode::kBinaryHamming);
    registry->load(float_key, snapshot, serve::ScoringMode::kFloatCosine);
    key = binary_key;

    net::NetServerConfig ncfg;
    ncfg.n_io_threads = static_cast<std::size_t>(args.get_int("io-threads", 1));
    server = std::make_unique<net::NetServer>(*registry, ncfg);
    server->start();
    port = server->port();
    std::printf("self-hosted server on 127.0.0.1:%u (keys %s, %s; queue depth %zu)\n",
                static_cast<unsigned>(port), binary_key.c_str(), float_key.c_str(),
                scfg.batch.max_queue_depth);
  } else {
    const std::string connect = args.get_str("connect", "");
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bench_netserve: --connect wants HOST:PORT\n");
      return 2;
    }
    host = connect.substr(0, colon);
    port = static_cast<std::uint16_t>(std::atoi(connect.c_str() + colon + 1));
    std::printf("targeting external server %s:%u (key %s, d=%zu)\n", host.c_str(),
                static_cast<unsigned>(port), key.c_str(), dim);
  }

  // -- 2. the request pool ----------------------------------------------------
  util::Rng rng(seed ^ 0xBE7C4ULL);
  const std::size_t pool_n = 64;
  nn::Tensor pool = input_kind == "embedding"
                        ? nn::Tensor::randn({pool_n, dim}, rng)
                        : nn::Tensor::randn({pool_n, 3, image_size, image_size}, rng);
  std::vector<nn::Tensor> inputs;
  inputs.reserve(pool_n);
  for (std::size_t i = 0; i < pool_n; ++i) inputs.push_back(slice_row(pool, i));

  // -- 3. bit-identity: network top-k == in-process engine, both paths -------
  bool identical_binary = true, identical_float = true;
  if (self_hosted) {
    nn::Tensor probe = input_kind == "embedding" ? pool : snapshot->embed(pool);
    const std::size_t check_k = std::min<std::size_t>(5, snapshot->n_classes());
    for (const bool binary : {true, false}) {
      const std::string& mkey = binary ? binary_key : float_key;
      bool& identical = binary ? identical_binary : identical_float;
      const auto engine = registry->engine(mkey);
      net::NetClient client(host, port);
      for (std::size_t i = 0; i < pool_n && identical; ++i) {
        // Reference at the same batch shape the blocking round-trip
        // produces server-side ([1, d]): float GEMM accumulation order is
        // batch-shape-dependent, so "bit-identical" is a per-request
        // statement, request in == request out.
        nn::Tensor row({1, dim});
        std::copy(probe.data() + i * dim, probe.data() + (i + 1) * dim, row.data());
        const auto expected = engine->topk_batch(row, check_k);
        serve::InferRequest req;
        req.model_key = mkey;
        req.input = slice_row(probe, i);
        req.k = check_k;
        const serve::InferResult r = client.infer(std::move(req));
        if (!r.ok() || r.topk.size() != expected[0].size()) {
          identical = false;
          break;
        }
        for (std::size_t j = 0; j < r.topk.size(); ++j)
          if (r.topk[j].label != expected[0][j].label ||
              r.topk[j].score != expected[0][j].score)
            identical = false;
      }
      client.close();
      std::printf("network top-%zu == in-process engine (%s): %s\n", check_k,
                  binary ? "binary-hamming" : "float-cosine",
                  identical ? "PASS" : "FAIL");
    }
  }

  // -- 4. calibrate, then sweep offered load ----------------------------------
  std::printf("calibrating peak loopback throughput (pipelined burst)...\n");
  const std::size_t cal_requests = static_cast<std::size_t>(
      std::max<long>(512, args.get_int("calibrate-requests", 4096)));
  const double peak_rps = calibrate_peak(host, port, key, inputs, topk, cal_requests);
  std::printf("calibrated peak: %.0f req/s\n", peak_rps);

  std::vector<double> rates;
  std::vector<bool> is_overload;
  const std::string rates_csv = args.get_str("rates", "");
  if (!rates_csv.empty()) {
    std::size_t pos = 0;
    while (pos < rates_csv.size()) {
      const std::size_t comma = rates_csv.find(',', pos);
      rates.push_back(std::atof(rates_csv.substr(pos, comma - pos).c_str()));
      is_overload.push_back(rates.back() > peak_rps);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  } else {
    for (const double frac : {0.25, 0.5, 0.75, 0.9}) {
      rates.push_back(frac * peak_rps);
      is_overload.push_back(false);
    }
    rates.push_back(1.4 * peak_rps);  // past the calibrated peak: overload
    is_overload.push_back(true);
  }

  util::Table table("open-loop load sweep — " + input_kind + " input, " +
                    std::to_string(n_conns) + " connection(s), " +
                    util::Table::num(duration_s, 1) + " s per point");
  table.set_header({"offered r/s", "achieved r/s", "goodput r/s", "ok", "rejected",
                    "transport", "p50 ms", "p99 ms", "p999 ms"});
  std::vector<LoadPoint> sweep;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("offered %.0f req/s%s...\n", rates[i],
                is_overload[i] ? " (overload point)" : "");
    LoadPoint p = run_open_loop(host, port, key, inputs, topk, rates[i], duration_s,
                                n_conns, seed + i);
    sweep.push_back(p);
    table.add_row({util::Table::num(p.offered_rps, 0), util::Table::num(p.achieved_rps, 0),
                   util::Table::num(p.goodput_rps, 0), std::to_string(p.ok),
                   std::to_string(p.rejected), std::to_string(p.transport),
                   util::Table::num(p.p50_ms, 2), util::Table::num(p.p99_ms, 2),
                   util::Table::num(p.p999_ms, 2)});
  }
  table.print();

  double peak_goodput = 0.0;
  std::size_t transport_total = 0, other_total = 0;
  for (const auto& p : sweep) {
    peak_goodput = std::max(peak_goodput, p.goodput_rps);
    transport_total += p.transport;
    other_total += p.other;
  }
  const LoadPoint* overload_point = nullptr;
  for (std::size_t i = 0; i < sweep.size(); ++i)
    if (is_overload[i]) overload_point = &sweep[i];

  // -- 5. verdicts -------------------------------------------------------------
  const bool identity_pass = identical_binary && identical_float;
  const bool transport_pass = !require_zero_transport || transport_total == 0;
  const bool goodput_pass = min_goodput <= 0.0 || peak_goodput >= min_goodput;
  // Overload must answer with named rejections (or absorb the offered rate
  // entirely — possible when the open loop cannot generate past the
  // server's true capacity on a shared host).
  const bool overload_pass =
      overload_point == nullptr || overload_point->rejected > 0 ||
      overload_point->goodput_rps >= 0.95 * overload_point->achieved_rps;

  std::printf("\npeak goodput: %.0f req/s%s\n", peak_goodput,
              min_goodput > 0.0
                  ? (" (target >= " + util::Table::num(min_goodput, 0) + ": " +
                     (goodput_pass ? "PASS" : "FAIL") + ")").c_str()
                  : "");
  if (overload_point != nullptr)
    std::printf("overload @ %.0f req/s: %zu kOverloaded rejections, goodput %.0f req/s, "
                "p99 %.2f ms (%s)\n",
                overload_point->offered_rps, overload_point->rejected,
                overload_point->goodput_rps, overload_point->p99_ms,
                overload_pass ? "PASS" : "FAIL");
  std::printf("transport errors across the sweep: %zu%s\n", transport_total,
              require_zero_transport ? (transport_pass ? " (PASS)" : " (FAIL)") : "");
  std::printf("wall time: %.1f s\n", total_wall.seconds());

  // -- 6. artifact ------------------------------------------------------------
  if (args.has("json")) {
    const std::string path = args.get_str("json", "BENCH_netserve.json");
    FILE* j = std::fopen(path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fprintf(j, "{\n  \"bench\": \"netserve\",\n");
    std::fprintf(j, "  \"input\": \"%s\",\n  \"connections\": %zu,\n", input_kind.c_str(),
                 n_conns);
    std::fprintf(j, "  \"self_hosted\": %s,\n  \"k\": %zu,\n  \"dim\": %zu,\n",
                 self_hosted ? "true" : "false", topk, dim);
    std::fprintf(j, "  \"duration_s\": %.2f,\n  \"calibrated_peak_rps\": %.1f,\n",
                 duration_s, peak_rps);
    std::fprintf(j, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::fprintf(j,
                   "    {\"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
                   "\"goodput_rps\": %.1f, \"ok\": %zu, \"rejected\": %zu, "
                   "\"transport_errors\": %zu, \"other_errors\": %zu, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                   "\"max_ms\": %.3f, \"overload\": %s}%s\n",
                   p.offered_rps, p.achieved_rps, p.goodput_rps, p.ok, p.rejected,
                   p.transport, p.other, p.p50_ms, p.p99_ms, p.p999_ms, p.max_ms,
                   is_overload[i] ? "true" : "false",
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    if (overload_point != nullptr)
      std::fprintf(j,
                   "  \"overload\": {\"offered_rps\": %.1f, \"rejected\": %zu, "
                   "\"goodput_rps\": %.1f, \"p99_ms\": %.3f, \"pass\": %s},\n",
                   overload_point->offered_rps, overload_point->rejected,
                   overload_point->goodput_rps, overload_point->p99_ms,
                   overload_pass ? "true" : "false");
    if (self_hosted)
      std::fprintf(j,
                   "  \"bit_identity\": {\"binary_hamming\": %s, \"float_cosine\": %s},\n",
                   identical_binary ? "true" : "false", identical_float ? "true" : "false");
    std::fprintf(j,
                 "  \"acceptance\": {\"peak_goodput_rps\": %.1f, \"min_goodput_rps\": %.1f, "
                 "\"transport_errors\": %zu, \"pass\": %s}\n",
                 peak_goodput, min_goodput, transport_total,
                 identity_pass && transport_pass && goodput_pass && overload_pass
                     ? "true"
                     : "false");
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("wrote %s\n", path.c_str());
  }

  if (server) server->stop();
  if (registry) registry->stop_all();
  return identity_pass && transport_pass && goodput_pass && overload_pass ? 0 : 1;
}
