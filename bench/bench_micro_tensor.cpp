// Micro-benchmarks of the tensor/NN substrate: GEMM variants, convolution,
// the similarity kernel, and the ϕ = A x B attribute encoding — the ops
// that dominate HDC-ZSC training time.
#include <benchmark/benchmark.h>

#include "core/attribute_encoder.hpp"
#include "core/similarity.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace hdczsc;
using tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulNT(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(2 * n * n * n));
}
BENCHMARK(BM_MatmulNT)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::Conv2d conv(c, c, 3, 1, 1, rng);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  nn::Conv2d conv(c, c, 3, 1, 1, rng);
  Tensor x = Tensor::randn({4, c, 16, 16}, rng);
  Tensor y = conv.forward(x, true);
  Tensor g(y.shape(), 1.0f);
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(g));
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_SimilarityKernelForward(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  core::SimilarityKernel kernel(0.07f);
  Tensor e = Tensor::randn({32, d}, rng);
  Tensor c = Tensor::randn({200, d}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(kernel.forward(e, c, false));
}
BENCHMARK(BM_SimilarityKernelForward)->Arg(256)->Arg(1536);

void BM_AttributeEncodePhi(benchmark::State& state) {
  // ϕ = A x B with A [200, 312], B [312, d].
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  auto space = data::AttributeSpace::cub();
  core::HdcAttributeEncoder enc(space, d, rng);
  Tensor a = Tensor::rand_uniform({200, space.n_attributes()}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(a, false));
}
BENCHMARK(BM_AttributeEncodePhi)->Arg(256)->Arg(1536);

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(7);
  Tensor l = Tensor::randn({64, static_cast<std::size_t>(state.range(0))}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::softmax_rows(l));
}
BENCHMARK(BM_SoftmaxRows)->Arg(200)->Arg(1000);

}  // namespace
