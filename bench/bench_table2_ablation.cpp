// Table II — image/attribute encoder ablation on the ZS split: backbone
// size x pre-training schedule x projection dim d x attribute encoder
// (fixed HDC vs trainable MLP). Paper rows use ResNet50/ResNet101 with
// d ∈ {2048, 1536}; the CPU-scale mapping keeps the *relationships* —
// smaller backbone + FC projection + phase II vs raw backbones and a
// larger backbone without FC (see DESIGN.md §4).
//
//   ./bench_table2_ablation [--classes=12] [--full]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  const char* paper_encoder;  ///< paper's image encoder label
  const char* paper_pretrain;
  std::size_t paper_d;
  double paper_hdc, paper_mlp;  ///< paper top-1% accuracies
  // CPU-scale mapping:
  const char* arch;
  bool use_fc;
  std::size_t d;  ///< projection dim when use_fc
  bool run_phase2;
};

const Row kRows[] = {
    // ResNet50 without FC, pre-train I,III only (phase II needs the FC).
    // resnet_micro_flat's raw feature dim is 2048, matching the paper axis.
    {"ResNet50", "I,III", 2048, 55, 60, "resnet_micro_flat", false, 0, false},
    // ResNet50+FC, full schedule, the paper's chosen d=1536 (best row).
    {"ResNet50+FC", "I,II,III", 1536, 58, 61, "resnet_micro_flat", true, 256, true},
    // ResNet50+FC at the larger d=2048 (worse in the paper).
    {"ResNet50+FC", "I,II,III", 2048, 50, 57, "resnet_micro_flat", true, 1024, true},
    // Bigger backbone without FC (ResNet101): more params, not better.
    {"ResNet101", "I,III", 2048, 53, 56, "resnet_mini_flat", false, 0, false},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const bool full = args.get_bool("full", false);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", full ? 32 : 24));
  const std::size_t seeds = static_cast<std::size_t>(args.get_int("seeds", 2));
  util::Timer timer;

  core::PipelineConfig base;
  base.n_classes = n_classes;
  base.images_per_class = 8;
  base.train_instances = 6;
  base.image_size = 32;
  base.split = "zs";
  base.zs_train_classes = n_classes * 3 / 4;
  base.pretrain_classes = 6;
  base.pretrain_images_per_class = 4;
  base.phase1 = {2, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  base.phase2 = {static_cast<std::size_t>(full ? 10 : 6), 16, 1e-2f, 1e-4f, 5.0f, true, false};
  base.phase3 = {static_cast<std::size_t>(full ? 10 : 6), 16, 1e-2f, 1e-4f, 5.0f, true, false};
  base.augment.enabled = false;

  util::Table table("Table II — encoder ablation, ZS split, top-1 accuracy (%)");
  table.set_header({"image encoder (paper)", "pre-train", "d (paper)", "HDC (paper)",
                    "MLP (paper)", "HDC (meas)", "MLP (meas)", "arch (meas)"});

  for (const Row& row : kRows) {
    double measured[2] = {0.0, 0.0};
    int idx = 0;
    for (const char* encoder : {"hdc", "mlp"}) {
      core::PipelineConfig cfg = base;
      cfg.model.image.arch = row.arch;
      cfg.model.image.use_projection = row.use_fc;
      cfg.model.image.proj_dim = row.use_fc ? row.d : 0;
      if (!row.use_fc) cfg.model.image.proj_dim = 1;  // ignored
      cfg.model.attribute_encoder = encoder;
      cfg.run_phase2 = row.run_phase2 && std::string(encoder) == "hdc";
      auto ms = core::run_pipeline_seeds(cfg, seeds);
      measured[idx++] = 100.0 * ms.top1_mean;
    }
    table.add_row({row.paper_encoder, row.paper_pretrain, std::to_string(row.paper_d),
                   util::Table::num(row.paper_hdc, 0), util::Table::num(row.paper_mlp, 0),
                   util::Table::num(measured[0], 1), util::Table::num(measured[1], 1),
                   row.arch});
  }
  table.print();
  std::printf("\nshape check (paper): the +FC, phase-II, moderate-d row is the best HDC\n"
              "configuration and outperforms both the raw backbone and the larger\n"
              "backbone; the trainable MLP is slightly ahead of fixed HDC codebooks.\n");
  std::printf("wall time: %.1f s\n", timer.seconds());
  return 0;
}
