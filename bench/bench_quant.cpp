// INT8 quantized backbone benchmark: integer GEMM vs the float compute
// core, the quantized embed forward vs float, end-to-end int8 serving
// throughput, and the accuracy cost of post-training quantization.
//
// Four sections:
//  * gemm      — square problems, single thread: gemm_s8u8_accumulate
//                (u8×s8→s32, runtime-ISA-dispatched) vs gemm_accumulate
//                (the float blocked core). The 256^3 int8-vs-float speedup
//                is the PR's headline acceptance number — ISA-conditional:
//                vpdpbusd (AVX-512 VNNI) is where int8 pulls ≥2x ahead;
//                the AVX2 vpmaddubsw path roughly matches float FMA
//                throughput, and the portable path exists for correctness,
//                not speed. Every variant this CPU runs is measured.
//  * embed     — ModelSnapshot::embed vs embed_int8 on the trained model:
//                the whole backbone (conv/bn/relu folded to int8 + float
//                glue) per batch, plus the embedding cosine agreement.
//  * serving   — InferenceEngine::classify_batch images/s, float32 vs int8
//                precision, identical snapshot and scoring.
//  * accuracy  — top-1 on the held-out test set through both engines; the
//                drift (percentage points, absolute) is the CI quality gate.
//
// Gates (defaults keep local / sanitizer runs informational):
//   --min-int8-speedup=auto|N   floor on the 256^3 int8-vs-float speedup.
//                               "auto" resolves by active kernel: 2.0 with
//                               AVX-512 VNNI, 1.05 with AVX2, none for
//                               portable (instrumented/old machines).
//   --max-acc-drift=P           ceiling on |top1_float - top1_int8| in
//                               percentage points (CI passes 0.5).
//
//   ./bench_quant [--classes=60] [--reps=5] [--calib-method=minmax]
//                 [--json=BENCH_quant.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "nn/quant.hpp"
#include "serve/engine.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

namespace {

template <typename Fn>
double best_seconds(Fn&& fn, std::size_t reps) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct GemmPoint {
  std::size_t size = 0;
  double float_ms = 0.0, int8_ms = 0.0, speedup = 0.0, int8_gmacs = 0.0;
};

GemmPoint bench_gemm_square(std::size_t s, std::size_t reps, util::Rng& rng) {
  std::vector<float> fa(s * s), fb(s * s), fc(s * s);
  std::vector<std::int8_t> qa(s * s);
  std::vector<std::uint8_t> qb(s * s);
  std::vector<std::int32_t> qc(s * s);
  for (auto& v : fa) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : fb) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : qa) v = static_cast<std::int8_t>(static_cast<int>(rng.next_u64() % 127) - 63);
  for (auto& v : qb) v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);

  GemmPoint p;
  p.size = s;
  p.float_ms = 1e3 * best_seconds(
                         [&] {
                           std::memset(fc.data(), 0, fc.size() * sizeof(float));
                           tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::N, s, s, s,
                                                   fa.data(), s, fb.data(), s, fc.data(), s);
                         },
                         reps);
  p.int8_ms = 1e3 * best_seconds(
                        [&] {
                          std::memset(qc.data(), 0, qc.size() * sizeof(std::int32_t));
                          tensor::gemm_s8u8_accumulate(s, s, s, qa.data(), s, qb.data(), s,
                                                       qc.data(), s);
                        },
                        reps);
  p.speedup = p.float_ms / p.int8_ms;
  p.int8_gmacs = static_cast<double>(s) * s * s / (p.int8_ms * 1e6);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 5));
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 60));
  const nn::CalibMethod calib = args.get_str("calib-method", "minmax") == "entropy"
                                    ? nn::CalibMethod::kEntropy
                                    : nn::CalibMethod::kMinMax;
  util::Timer wall;
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  // -- GEMM: int8 vs float blocked core, single thread -----------------------
  util::set_worker_count(1);
  const std::string active_kernel = tensor::gemm_int8_kernel_name();
  util::Table gemm_table("int8 GEMM (u8xs8->s32) vs float blocked core — single thread, "
                         "int8 kernel: " + active_kernel +
                         ", float kernel: " + tensor::gemm_kernel_name());
  gemm_table.set_header({"m=n=k", "float ms", "int8 ms", "int8 GMAC/s", "int8 vs float"});
  std::vector<GemmPoint> gemm_points;
  double speedup_256 = 0.0;
  for (std::size_t s : {std::size_t{128}, std::size_t{256}, std::size_t{512}}) {
    GemmPoint p = bench_gemm_square(s, reps, rng);
    gemm_points.push_back(p);
    if (s == 256) speedup_256 = p.speedup;
    gemm_table.add_row({std::to_string(s), util::Table::num(p.float_ms, 3),
                        util::Table::num(p.int8_ms, 3), util::Table::num(p.int8_gmacs, 1),
                        util::Table::num(p.speedup, 2) + "x"});
  }
  gemm_table.print();

  // Every int8 variant this CPU can run, at the headline size.
  util::Table kern_table("int8 kernel variants at 256^3 — single thread");
  kern_table.set_header({"kernel", "int8 ms", "int8 GMAC/s", "vs float"});
  struct KernelPoint {
    std::string name;
    double int8_ms, gmacs, vs_float;
  };
  std::vector<KernelPoint> kernel_points;
  for (const char* kernel : {"portable", "avx2", "avx512vnni"}) {
    if (!tensor::gemm_int8_force_kernel(kernel)) continue;
    GemmPoint p = bench_gemm_square(256, reps, rng);
    kernel_points.push_back({kernel, p.int8_ms, p.int8_gmacs, p.speedup});
    kern_table.add_row({kernel, util::Table::num(p.int8_ms, 3),
                        util::Table::num(p.int8_gmacs, 1),
                        util::Table::num(p.speedup, 2) + "x"});
  }
  tensor::gemm_int8_force_kernel("auto");
  kern_table.print();
  util::set_worker_count(0);

  // -- train a small model, quantize its snapshot ----------------------------
  core::PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 16;
  cfg.train_instances = 12;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = n_classes / 3;
  cfg.model.image.proj_dim = 256;
  cfg.run_phase1 = true;
  cfg.run_phase2 = true;
  cfg.phase3 = {10, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.seed = 1;
  std::printf("training a small model for the embed/serving sections...\n");
  auto tp = core::run_pipeline_trained(cfg);
  std::printf("pipeline zsc top-1: %.2f %%\n", 100.0 * tp.result.zsc.top1);
  auto snapshot = std::make_shared<serve::ModelSnapshot>(tp.model, tp.test_class_attributes);
  const auto qi = snapshot->quantize(tp.test_set.images, calib)->info();
  std::printf("quantized: %s calibrated, %zu conv + %zu linear, %zu weight bytes\n",
              nn::calib_method_name(qi.method), qi.n_conv, qi.n_linear, qi.weight_bytes);

  // -- embed forward: float vs int8 ------------------------------------------
  const tensor::Tensor& images = tp.test_set.images;
  const std::size_t n_images = images.size(0);
  const std::size_t chw = images.numel() / n_images;
  auto batch_of = [&](std::size_t b) {
    tensor::Tensor batch({b, images.size(1), images.size(2), images.size(3)});
    for (std::size_t i = 0; i < b; ++i)
      std::memcpy(batch.data() + i * chw, images.data() + (i % n_images) * chw,
                  chw * sizeof(float));
    return batch;
  };
  const std::size_t embed_batch = 8;
  const tensor::Tensor eb = batch_of(embed_batch);
  snapshot->embed(eb);       // warm float scratch
  snapshot->embed_int8(eb);  // warm int8 scratch
  const double embed_f_ms = 1e3 * best_seconds([&] { snapshot->embed(eb); }, reps);
  const double embed_q_ms = 1e3 * best_seconds([&] { snapshot->embed_int8(eb); }, reps);
  const double embed_speedup = embed_f_ms / embed_q_ms;

  // Directional agreement of the embeddings (what cosine scoring consumes).
  const tensor::Tensor ef = snapshot->embed(eb);
  const tensor::Tensor eq = snapshot->embed_int8(eb);
  double cos_acc = 0.0;
  const std::size_t d = ef.size(1);
  for (std::size_t r = 0; r < embed_batch; ++r) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double x = ef.data()[r * d + j], y = eq.data()[r * d + j];
      dot += x * y;
      na += x * x;
      nb += y * y;
    }
    cos_acc += dot / (std::sqrt(na * nb) + 1e-12);
  }
  const double embed_cosine = cos_acc / static_cast<double>(embed_batch);

  util::Table embed_table("backbone embed forward, batch " + std::to_string(embed_batch));
  embed_table.set_header({"path", "ms/batch", "ms/image", "speedup"});
  embed_table.add_row({"float32", util::Table::num(embed_f_ms, 3),
                       util::Table::num(embed_f_ms / embed_batch, 3), "1.00x"});
  embed_table.add_row({"int8", util::Table::num(embed_q_ms, 3),
                       util::Table::num(embed_q_ms / embed_batch, 3),
                       util::Table::num(embed_speedup, 2) + "x"});
  embed_table.print();
  std::printf("embedding cosine (int8 vs float, mean per row): %.5f\n", embed_cosine);

  // -- serving: classify_batch images/s, float vs int8 engine ----------------
  serve::InferenceEngine fengine(snapshot, serve::ScoringMode::kFloatCosine);
  serve::InferenceEngine qengine(snapshot, serve::ScoringMode::kFloatCosine, 0, 0.0f,
                                 serve::Precision::kInt8);
  auto images_per_sec = [&](serve::InferenceEngine& engine) {
    const std::size_t bsz = 8, n_batches = 4;
    tensor::Tensor batch = batch_of(bsz);
    engine.classify_batch(batch);  // warm scratch
    const double secs = best_seconds(
        [&] {
          for (std::size_t i = 0; i < n_batches; ++i) engine.classify_batch(batch);
        },
        reps);
    return static_cast<double>(bsz * n_batches) / secs;
  };
  const double fps_float = images_per_sec(fengine);
  const double fps_int8 = images_per_sec(qengine);
  const double serve_speedup = fps_int8 / fps_float;

  util::Table serve_table("classify_batch — float32 vs int8 backbone, batch 8");
  serve_table.set_header({"precision", "images/s", "speedup"});
  serve_table.add_row({"float32", util::Table::num(fps_float, 1), "1.00x"});
  serve_table.add_row({"int8", util::Table::num(fps_int8, 1),
                       util::Table::num(serve_speedup, 2) + "x"});
  serve_table.print();

  // -- accuracy: top-1 drift over the whole held-out test set ----------------
  const auto fpred = fengine.classify_batch(images);
  const auto qpred = qengine.classify_batch(images);
  std::size_t f_hits = 0, q_hits = 0, agree = 0;
  for (std::size_t i = 0; i < n_images; ++i) {
    f_hits += fpred[i].label == tp.test_set.labels[i];
    q_hits += qpred[i].label == tp.test_set.labels[i];
    agree += fpred[i].label == qpred[i].label;
  }
  const double top1_float = 100.0 * static_cast<double>(f_hits) / n_images;
  const double top1_int8 = 100.0 * static_cast<double>(q_hits) / n_images;
  const double drift_pp = std::abs(top1_float - top1_int8);
  const double agreement = 100.0 * static_cast<double>(agree) / n_images;
  std::printf("top-1 on %zu held-out images: float %.2f %%, int8 %.2f %% "
              "(drift %.2f pp, decisions agree on %.2f %%)\n",
              n_images, top1_float, top1_int8, drift_pp, agreement);

  // -- machine-readable artifact ---------------------------------------------
  if (args.has("json")) {
    const std::string json_path = args.get_str("json", "BENCH_quant.json");
    FILE* j = std::fopen(json_path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(j, "{\n");
    std::fprintf(j, "  \"bench\": \"quant\",\n");
    std::fprintf(j, "  \"int8_kernel\": \"%s\",\n", active_kernel.c_str());
    std::fprintf(j, "  \"float_kernel\": \"%s\",\n", tensor::gemm_kernel_name());
    std::fprintf(j, "  \"calib_method\": \"%s\",\n", nn::calib_method_name(qi.method));
    std::fprintf(j, "  \"gemm_single_thread\": [\n");
    for (std::size_t i = 0; i < gemm_points.size(); ++i) {
      const GemmPoint& p = gemm_points[i];
      std::fprintf(j,
                   "    {\"size\": %zu, \"float_ms\": %.4f, \"int8_ms\": %.4f, "
                   "\"int8_gmacs\": %.2f, \"speedup\": %.3f}%s\n",
                   p.size, p.float_ms, p.int8_ms, p.int8_gmacs, p.speedup,
                   i + 1 < gemm_points.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j, "  \"gemm_256_kernels\": [\n");
    for (std::size_t i = 0; i < kernel_points.size(); ++i) {
      const KernelPoint& p = kernel_points[i];
      std::fprintf(j,
                   "    {\"kernel\": \"%s\", \"int8_ms\": %.4f, \"int8_gmacs\": %.2f, "
                   "\"vs_float\": %.3f}%s\n",
                   p.name.c_str(), p.int8_ms, p.gmacs, p.vs_float,
                   i + 1 < kernel_points.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j, "  \"gemm_256_int8_vs_float\": %.3f,\n", speedup_256);
    std::fprintf(j,
                 "  \"embed_forward\": {\"batch\": %zu, \"float_ms\": %.4f, \"int8_ms\": "
                 "%.4f, \"speedup\": %.3f, \"cosine\": %.5f},\n",
                 embed_batch, embed_f_ms, embed_q_ms, embed_speedup, embed_cosine);
    std::fprintf(j,
                 "  \"classify_batch\": {\"images_per_s_float\": %.2f, "
                 "\"images_per_s_int8\": %.2f, \"speedup\": %.3f},\n",
                 fps_float, fps_int8, serve_speedup);
    std::fprintf(j,
                 "  \"accuracy\": {\"n_images\": %zu, \"top1_float\": %.3f, \"top1_int8\": "
                 "%.3f, \"drift_pp\": %.3f, \"agreement\": %.3f}\n",
                 n_images, top1_float, top1_int8, drift_pp, agreement);
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // -- acceptance gates ------------------------------------------------------
  // The GEMM gate is ISA-conditional: "auto" resolves to 2.0 where vpdpbusd
  // runs (int8's whole advantage), 1.05 on AVX2 (vpmaddubsw roughly ties
  // float FMA — int8 must merely not lose), and no gate on portable.
  const std::string gate_arg = args.get_str("min-int8-speedup", "0");
  double min_speedup = 0.0;
  if (gate_arg == "auto") {
    if (active_kernel == "avx512vnni")
      min_speedup = 2.0;
    else if (active_kernel == "avx2")
      min_speedup = 1.05;
  } else {
    min_speedup = std::atof(gate_arg.c_str());
  }
  const double max_drift = args.get_double("max-acc-drift", 0.0);

  int rc = 0;
  if (min_speedup > 0.0) {
    std::printf("\n256^3 GEMM: int8 %.2fx over float, single thread, kernel %s "
                "(gate >= %.2fx: %s)\n",
                speedup_256, active_kernel.c_str(), min_speedup,
                speedup_256 >= min_speedup ? "PASS" : "FAIL");
    if (speedup_256 < min_speedup) {
      std::fprintf(stderr, "FAIL: int8 256^3 speedup %.2fx below required %.2fx\n",
                   speedup_256, min_speedup);
      rc = 1;
    }
  } else {
    std::printf("\n256^3 GEMM: int8 %.2fx over float, single thread, kernel %s "
                "(informational — no gate set)\n",
                speedup_256, active_kernel.c_str());
  }
  if (max_drift > 0.0) {
    std::printf("accuracy drift: %.2f pp (gate <= %.2f pp: %s)\n", drift_pp, max_drift,
                drift_pp <= max_drift ? "PASS" : "FAIL");
    if (drift_pp > max_drift) {
      std::fprintf(stderr, "FAIL: int8 top-1 drift %.2f pp above allowed %.2f pp\n", drift_pp,
                   max_drift);
      rc = 1;
    }
  } else {
    std::printf("accuracy drift: %.2f pp (informational — no gate set)\n", drift_pp);
  }
  std::printf("wall time: %.1f s\n", wall.seconds());
  return rc;
}
