// Fig. 4 — accuracy vs parameter count (the Pareto claim): HDC-ZSC and the
// Trainable-MLP variant against ESZSL (non-generative) and a
// feature-generating WGAN (generative family), all re-run on the same
// synthetic ZS task with a shared image backbone; parameter counts are
// reported at *paper scale* (analytic ResNet50/101 formulas) so the x-axis
// matches the paper's. The paper's literature scatter is reprinted below.
//
//   ./bench_fig4_pareto [--classes=16] [--full]
#include <cstdio>

#include "baselines/eszsl.hpp"
#include "baselines/feature_wgan.hpp"
#include "core/param_count.hpp"
#include "core/pipeline.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const bool full = args.get_bool("full", false);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", full ? 32 : 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  util::Timer timer;

  // ---- shared data + encoder training (phases I+II) ------------------------
  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = n_classes;
  dcfg.images_per_class = 8;
  dcfg.image_size = 32;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);
  auto split = data::make_zs_split(n_classes, n_classes * 3 / 4, seed);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  const std::size_t train_hi = 6;
  data::DataLoader train(dataset, split.train_classes, 0, train_hi, 16, true, no_aug, seed);
  data::DataLoader test(dataset, split.test_classes, 0, 8, 16, false, no_aug, seed);

  core::ZscModelConfig mcfg;
  mcfg.image.arch = "resnet_micro_flat";
  mcfg.image.proj_dim = 256;
  
  util::Rng rng(seed);
  auto hdc_model = core::make_zsc_model(mcfg, space, rng);

  core::TrainConfig p2 = {static_cast<std::size_t>(full ? 6 : 3), 16, 1e-2f, 1e-4f,
                          5.0f, true, false};
  core::TrainConfig p3 = {static_cast<std::size_t>(full ? 10 : 5), 16, 1e-2f, 1e-4f,
                          5.0f, true, false};

  core::Trainer trainer(seed);
  trainer.phase2_attribute_extraction(*hdc_model, train, p2);

  // ---- (1) HDC-ZSC ----------------------------------------------------------
  {
    data::DataLoader t(dataset, split.train_classes, 0, train_hi, 16, true, no_aug, seed + 1);
    trainer.phase3_zsc(*hdc_model, t, p3);
  }
  const auto hdc_res = trainer.evaluate_zsc(*hdc_model, test);

  // Shared frozen features for the feature-space baselines — the same role
  // ResNet101 features play for ESZSL in the literature.
  auto extract = [&](const data::DataLoader& loader) {
    data::Batch b = loader.all_eval();
    return std::pair<nn::Tensor, std::vector<std::size_t>>(
        hdc_model->image_encoder().forward(b.images, false), b.labels);
  };
  auto [train_feats, train_labels] = extract(train);
  auto [test_feats, test_labels] = extract(test);
  nn::Tensor seen_sigs = train.class_attribute_rows();
  nn::Tensor unseen_sigs = test.class_attribute_rows();

  // ---- (2) Trainable-MLP variant ---------------------------------------------
  double mlp_top1;
  {
    util::Rng mrng(seed + 2);
    core::ZscModelConfig mm = mcfg;
    mm.attribute_encoder = "mlp";
    mm.mlp_hidden = 64;
    auto mlp_model = core::make_zsc_model(mm, space, mrng);
    data::DataLoader t(dataset, split.train_classes, 0, train_hi, 16, true, no_aug, seed + 2);
    core::Trainer mt(seed + 2);
    mt.phase3_zsc(*mlp_model, t, p3, /*freeze_backbone=*/false);
    mlp_top1 = mt.evaluate_zsc(*mlp_model, test).top1;
  }

  // ---- (3) ESZSL ---------------------------------------------------------------
  baselines::Eszsl eszsl({1.0f, 1.0f});
  eszsl.fit(train_feats, train_labels, seen_sigs);
  const double eszsl_top1 = [&] {
    auto scores = eszsl.scores(test_feats, unseen_sigs);
    return metrics::top1_accuracy(scores, test_labels);
  }();

  // ---- (4) feature-generating WGAN (f-CLSWGAN recipe) ---------------------------
  baselines::FeatureWganConfig wcfg;
  wcfg.epochs = full ? 80 : 40;
  wcfg.hidden = 64;
  util::Rng wrng(seed + 3);
  baselines::FeatureWgan wgan(hdc_model->dim(), space.n_attributes(), wcfg, wrng);
  wgan.fit(train_feats, train_labels, seen_sigs);
  const double wgan_top1 = wgan.zsl_top1(test_feats, test_labels, unseen_sigs);

  // ---- report --------------------------------------------------------------------
  // Parameter counts at PAPER scale (ResNet50/101 with the paper's dims).
  const double hdc_params = static_cast<double>(core::hdczsc_param_count("resnet50", 1536, true)) / 1e6;
  const double mlp_params = static_cast<double>(core::mlp_zsc_param_count("resnet50", 1536, true, 312, 512)) / 1e6;
  const double eszsl_params =
      (static_cast<double>(core::backbone_param_count("resnet101")) + 2048.0 * 312.0) / 1e6;
  const double wgan_params =
      (static_cast<double>(core::backbone_param_count("resnet101")) +
       // paper-scale G/D: z=312, hidden=4096, feat=2048 (f-CLSWGAN defaults)
       ((312.0 + 312.0) * 4096 + 4096 + 4096.0 * 2048 + 2048) +
       ((2048.0 + 312.0) * 4096 + 4096 + 4096.0 + 1)) / 1e6;

  util::Table table("Fig. 4 — measured points (accuracy on synthetic ZS task; params at "
                    "paper scale)");
  table.set_header({"model", "type", "top-1 (meas %)", "params (M, paper scale)",
                    "top-1 (paper %)"});
  table.add_row({"HDC-ZSC (ours)", "non-generative", util::Table::num(100.0 * hdc_res.top1, 1),
                 util::Table::num(hdc_params, 1), "63.8"});
  table.add_row({"Trainable-MLP (ours)", "non-generative", util::Table::num(100.0 * mlp_top1, 1),
                 util::Table::num(mlp_params, 1), "65.0"});
  table.add_row({"ESZSL", "non-generative", util::Table::num(100.0 * eszsl_top1, 1),
                 util::Table::num(eszsl_params, 1), "53.9"});
  table.add_row({"f-CLSWGAN-style", "generative", util::Table::num(100.0 * wgan_top1, 1),
                 util::Table::num(wgan_params, 1), "57.3"});
  table.print();

  util::Table lit("Fig. 4 — literature scatter reprinted from the paper (source=paper)");
  lit.set_header({"model", "top-1 (%)", "params (M)", "generative"});
  for (const auto& p : core::fig4_literature_points())
    lit.add_row({p.name, util::Table::num(p.top1_percent, 1),
                 util::Table::num(p.params_millions, 1), p.generative ? "yes" : "no"});
  lit.print();

  std::printf("\nPareto check (paper): HDC-ZSC must dominate ESZSL (higher accuracy,\n"
              ">=1.72x fewer params) and sit on the accuracy/params Pareto front; the\n"
              "generative model needs 1.75-2.58x more parameters.\n");
  std::printf("  measured: HDC-ZSC %.1f%% @ %.1fM  vs  ESZSL %.1f%% @ %.1fM  (ratio %.2fx)\n",
              100.0 * hdc_res.top1, hdc_params, 100.0 * eszsl_top1, eszsl_params,
              eszsl_params / hdc_params);
  std::printf("  measured: WGAN %.1f%% @ %.1fM (ratio %.2fx vs HDC-ZSC)\n",
              100.0 * wgan_top1, wgan_params, wgan_params / hdc_params);
  std::printf("  wall time: %.1f s\n", timer.seconds());
  return 0;
}
