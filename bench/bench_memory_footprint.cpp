// §III-A memory claims: factored (G+V) vs flat (α) codebook storage across
// dimensionalities, plus the attribute-encoder share of the whole model.
// Paper numbers: 71% reduction; 17 KB of atomic hypervectors at d=1536;
// "negligible compared to the image encoder's hundreds of MB".
#include <cstdio>

#include "core/param_count.hpp"
#include "data/attribute_space.hpp"
#include "hdc/memory_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace hdczsc;
  auto space = data::AttributeSpace::cub();

  util::Table table("codebook storage: factored (G+V) vs flat (alpha) — paper claims "
                    "71% reduction, ~17 KB at d=1536");
  table.set_header({"d", "factored (B)", "flat (B)", "reduction (%)", "paper"});
  for (std::size_t d : {256u, 512u, 1024u, 1536u, 2048u, 4096u}) {
    auto r = hdc::memory_report(space.n_groups(), space.n_values(), space.n_attributes(), d);
    table.add_row({std::to_string(d), std::to_string(r.factored_bytes),
                   std::to_string(r.flat_bytes), util::Table::num(r.reduction_percent, 1),
                   d == 1536 ? "17 KB / 71%" : "-"});
  }
  table.print();

  // Attribute-encoder share of the full model at paper scale.
  const double encoder_mb =
      static_cast<double>(hdc::memory_report(28, 61, 312, 1536).factored_bytes) / (1024.0 * 1024.0);
  const double image_mb =
      static_cast<double>(core::hdczsc_param_count("resnet50", 1536, true)) * 4.0 /
      (1024.0 * 1024.0);
  std::printf("\npaper-scale model storage: image encoder %.1f MB (fp32) vs HDC attribute "
              "encoder %.3f MB -> %.4f %% of total\n",
              image_mb, encoder_mb, 100.0 * encoder_mb / (image_mb + encoder_mb));
  std::printf("(paper: \"negligible amount compared to the image encoder memory "
              "requirement which is typically several hundreds of MB\")\n");
  return 0;
}
