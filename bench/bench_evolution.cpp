// Live-evolution benchmark: classes-appended-per-second *while serving*.
//
// Builds a large-label-space snapshot (default 100k classes — the regime
// where the copy-on-write slab design earns its keep), serves it through
// the ModelRegistry under continuous embedding-query traffic, and times a
// run of online appends (`ModelRegistry::append_classes`, the same path
// the HDCN kAppendClasses admin frame lands on). Reported per append:
// encode ϕ(a) + slab append + shard rebuild + checksum chain + publish.
//
// The interesting number is not the mean but the shape: the *first*
// append pays the one-time ×2 slab reallocation (a loaded snapshot's
// store is exact-fit), every later append within capacity structurally
// shares planes and should be far cheaper. Both are reported.
//
// Traffic threads run the whole time; any non-kOk response is a failure —
// live evolution that drops requests is not live.
//
// Gates (defaults keep local runs informational):
//   --min-appends-per-sec=X   floor on sustained appends/s, measured over
//                             the whole run including the realloc append
//                             (CI passes 1.0 at 100k classes). Setting the
//                             gate also requires zero request failures.
//
//   ./bench_evolution [--classes=100000] [--dim=64] [--alpha=24]
//                     [--expansion=2] [--appends=16] [--batch=8]
//                     [--traffic-threads=2] [--k=10] [--shards=4]
//                     [--json=BENCH_evolve.json] [--min-appends-per-sec=0]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/zsc_model.hpp"
#include "data/attribute_space.hpp"
#include "serve/model_registry.hpp"
#include "tensor/tensor.hpp"
#include "util/config.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t classes = static_cast<std::size_t>(args.get_int("classes", 100000));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const std::size_t alpha = static_cast<std::size_t>(args.get_int("alpha", 24));
  const std::size_t expansion = static_cast<std::size_t>(args.get_int("expansion", 2));
  const std::size_t n_appends = static_cast<std::size_t>(args.get_int("appends", 16));
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 8));
  const std::size_t n_traffic = static_cast<std::size_t>(args.get_int("traffic-threads", 2));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 10));
  const std::size_t shards = static_cast<std::size_t>(args.get_int("shards", 4));
  util::Timer wall;

  // -- build: frozen model + C-class snapshot --------------------------------
  util::Rng rng(0xE70BE9CULL);
  core::ImageEncoderConfig icfg;
  icfg.arch = "resnet_micro_flat";
  icfg.proj_dim = dim;
  auto img = std::make_unique<core::ImageEncoder>(icfg, rng);
  data::AttributeSpace space = data::AttributeSpace::toy(alpha, 1, 1);
  auto attr = std::make_unique<core::HdcAttributeEncoder>(space, img->dim(), rng);
  auto model = std::make_shared<core::ZscModel>(std::move(img), std::move(attr), 4.0f);

  util::Timer build_t;
  auto snapshot = std::make_shared<const serve::ModelSnapshot>(
      model, tensor::Tensor::randn({classes, alpha}, rng), expansion, shards);
  const double build_s = build_t.seconds();
  std::printf("built %zu-class snapshot (dim=%zu, expansion=%zu): %.2f s\n", classes, dim,
              expansion, build_s);

  serve::ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.batch.max_batch = 16;
  cfg.batch.max_delay_ms = 0.2;
  cfg.batch.max_queue_depth = 1 << 16;
  serve::ModelRegistry registry(cfg);
  registry.load("evolve", snapshot, serve::ScoringMode::kBinaryHamming);

  // -- serve: continuous embedding traffic -----------------------------------
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0}, failed{0};
  std::vector<std::thread> traffic;
  for (std::size_t t = 0; t < n_traffic; ++t) {
    traffic.emplace_back([&, t] {
      util::Rng trng(0x7AFF1CULL + t);
      while (!stop.load(std::memory_order_relaxed)) {
        serve::InferRequest req;
        req.model_key = "evolve";
        req.input = tensor::Tensor::randn({dim}, trng);
        req.k = static_cast<std::uint32_t>(k);
        const serve::InferResult r = registry.submit(std::move(req)).get();
        (r.ok() ? served : failed).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Warm the pipeline before the timed section.
  while (served.load() + failed.load() < n_traffic * 4) std::this_thread::yield();

  // -- the timed section: online appends under load --------------------------
  std::vector<double> append_ms(n_appends, 0.0);
  util::Rng arng(0xADDC1A55ULL);
  util::Timer run_t;
  for (std::size_t a = 0; a < n_appends; ++a) {
    const tensor::Tensor attrs = tensor::Tensor::randn({batch, alpha}, arng);
    util::Timer t;
    registry.append_classes("evolve", attrs);
    append_ms[a] = t.seconds() * 1e3;
  }
  const double run_s = run_t.seconds();
  stop.store(true);
  for (auto& t : traffic) t.join();
  const auto engine = registry.engine("evolve");
  registry.stop_all();
  const double appends_per_sec = static_cast<double>(n_appends) / run_s;
  const double classes_per_sec = static_cast<double>(n_appends * batch) / run_s;
  std::vector<double> sorted = append_ms;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = sorted[sorted.size() / 2];
  const double worst = sorted.back();

  std::printf("\nappends under load: %zu x %zu classes in %.3f s\n", n_appends, batch, run_s);
  std::printf("  appends/s            %.2f\n", appends_per_sec);
  std::printf("  classes/s            %.2f\n", classes_per_sec);
  std::printf("  first (realloc) ms   %.2f\n", append_ms.front());
  std::printf("  p50 (shared) ms      %.2f\n", p50);
  std::printf("  worst ms             %.2f\n", worst);
  std::printf("  final version        %llu (%zu classes)\n",
              static_cast<unsigned long long>(engine->store_version()), engine->n_classes());
  std::printf("  requests served      %llu (failed %llu)\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(failed.load()));

  if (args.has("json")) {
    const std::string json_path = args.get_str("json", "BENCH_evolve.json");
    FILE* j = std::fopen(json_path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(j, "{\n");
    std::fprintf(j, "  \"bench\": \"evolution\",\n");
    std::fprintf(j,
                 "  \"config\": {\"classes\": %zu, \"dim\": %zu, \"alpha\": %zu, "
                 "\"expansion\": %zu, \"appends\": %zu, \"batch\": %zu, "
                 "\"traffic_threads\": %zu, \"shards\": %zu},\n",
                 classes, dim, alpha, expansion, n_appends, batch, n_traffic, shards);
    std::fprintf(j, "  \"build_seconds\": %.3f,\n", build_s);
    std::fprintf(j,
                 "  \"appends\": {\"per_sec\": %.3f, \"classes_per_sec\": %.3f, "
                 "\"first_ms\": %.3f, \"p50_ms\": %.3f, \"worst_ms\": %.3f},\n",
                 appends_per_sec, classes_per_sec, append_ms.front(), p50, worst);
    std::fprintf(j, "  \"final\": {\"version\": %llu, \"classes\": %zu},\n",
                 static_cast<unsigned long long>(engine->store_version()),
                 engine->n_classes());
    std::fprintf(j, "  \"traffic\": {\"served\": %llu, \"failed\": %llu}\n",
                 static_cast<unsigned long long>(served.load()),
                 static_cast<unsigned long long>(failed.load()));
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // -- acceptance gates ------------------------------------------------------
  const double min_aps = args.get_double("min-appends-per-sec", 0.0);
  int rc = 0;
  if (min_aps > 0.0) {
    std::printf("appends/s: %.2f (gate >= %.2f: %s)\n", appends_per_sec, min_aps,
                appends_per_sec >= min_aps ? "PASS" : "FAIL");
    if (appends_per_sec < min_aps) {
      std::fprintf(stderr, "FAIL: %.2f appends/s below required %.2f\n", appends_per_sec,
                   min_aps);
      rc = 1;
    }
    if (failed.load() != 0) {
      std::fprintf(stderr, "FAIL: %llu requests failed during live evolution\n",
                   static_cast<unsigned long long>(failed.load()));
      rc = 1;
    }
  } else {
    std::printf("appends/s: %.2f (informational — no gate set)\n", appends_per_sec);
  }
  std::printf("wall time: %.1f s\n", wall.seconds());
  return rc;
}
