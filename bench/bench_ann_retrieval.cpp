// Approximate million-class retrieval benchmark: the IVF + Hamming
// early-exit + binary→float rerank cascade (serve/ann_store.hpp) against
// the exact sharded scatter/gather scan, on a clustered synthetic label
// space — the regime the coarse quantizer is built for.
//
// Sections:
//  * build     — prototype store + spherical k-means wall time at scale.
//  * baseline  — exact sharded topk_float / topk_binary latency for the
//                query batch (the ground truth AND the speedup denominator).
//  * sweep     — nprobe Pareto: per probe width, latency + recall@10 of the
//                ivf-binary tier and the cascade tier (rerank·k float
//                re-scores), recall measured against the exact float top-10.
//  * defaults  — the serving defaults (nprobe = Cc/8, rerank = 4): the
//                recall@10 and exact-float-vs-cascade speedup quoted in the
//                acceptance gates.
//
// Gates (defaults keep local / sanitizer runs informational):
//   --min-recall=R    floor on cascade recall@10 at the serving defaults
//                     (CI passes 0.99).
//   --min-speedup=X   floor on the exact-float / cascade latency ratio at
//                     the serving defaults (CI passes 3.0 at 250k classes).
//
//   ./bench_ann_retrieval [--classes=1000000] [--dim=64] [--expansion=4]
//                         [--queries=128] [--k=10] [--rerank=4] [--reps=3]
//                         [--json=BENCH_ann.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "serve/ann_store.hpp"
#include "serve/sharded_store.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

namespace {

template <typename Fn>
double best_seconds(Fn&& fn, std::size_t reps) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Mean recall@k of `got` against the exact top-k `want`.
double recall_at_k(const std::vector<std::vector<serve::TopK>>& got,
                   const std::vector<std::vector<serve::TopK>>& want) {
  std::size_t inter = 0, total = 0;
  for (std::size_t q = 0; q < want.size(); ++q) {
    std::set<std::size_t> truth;
    for (const serve::TopK& h : want[q]) truth.insert(h.label);
    for (const serve::TopK& h : got[q]) inter += truth.count(h.label);
    total += want[q].size();
  }
  return total ? static_cast<double>(inter) / static_cast<double>(total) : 0.0;
}

struct SweepPoint {
  std::size_t nprobe = 0;
  double ivf_ms = 0.0, ivf_recall = 0.0;
  double cascade_ms = 0.0, cascade_recall = 0.0, cascade_speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t classes = static_cast<std::size_t>(args.get_int("classes", 1000000));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 64));
  const std::size_t expansion = static_cast<std::size_t>(args.get_int("expansion", 4));
  const std::size_t n_queries = static_cast<std::size_t>(args.get_int("queries", 128));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 10));
  const std::size_t rerank = static_cast<std::size_t>(args.get_int("rerank", 4));
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 3));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  util::Timer wall;

  // -- clustered synthetic label space ---------------------------------------
  // Two-level structure, the shape of real near-duplicate-heavy corpora:
  // ~√C well-separated unit cluster centers; each cluster holds families of
  // ~15 near-duplicate rows (family center = cluster center + medium noise,
  // rows = family center + small noise). A query lands next to one row, so
  // its exact top-k is its own family — findable by the coarse probe
  // (cluster level) and separable by the binary prefilter (family level).
  const std::size_t n_centers = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(classes)))));
  const std::size_t family = 15;
  std::printf("label space: %zu classes over %zu clusters, families of %zu, d=%zu, "
              "expansion=%zu (D=%zu)\n",
              classes, n_centers, family, dim, expansion, dim * expansion);

  util::Timer t_data;
  tensor::Tensor centers = tensor::Tensor::randn({n_centers, dim}, rng);
  centers = tensor::l2_normalize_rows(centers);
  tensor::Tensor emb({n_queries, dim});
  const serve::PrototypeStore store = [&] {
    tensor::Tensor protos({classes, dim});
    std::vector<float> fc(dim);
    std::size_t c = 0;
    for (std::size_t f = 0; c < classes; ++f) {
      const float* mu = centers.data() + (f % n_centers) * dim;
      for (std::size_t j = 0; j < dim; ++j)
        fc[j] = mu[j] + 0.05f * static_cast<float>(rng.normal());
      for (std::size_t i = 0; i < family && c < classes; ++i, ++c) {
        float* row = protos.data() + c * dim;
        for (std::size_t j = 0; j < dim; ++j)
          row[j] = fc[j] + 0.005f * static_cast<float>(rng.normal());
      }
    }
    for (std::size_t q = 0; q < n_queries; ++q) {
      const float* row = protos.data() + rng.next_below(classes) * dim;
      for (std::size_t j = 0; j < dim; ++j)
        emb.data()[q * dim + j] = row[j] + 0.002f * static_cast<float>(rng.normal());
    }
    return serve::PrototypeStore(protos, 4.0f, expansion);
  }();
  std::printf("store built in %.1f s (float %.1f MB, binary %.1f MB)\n", t_data.seconds(),
              store.float_bytes() / 1e6, store.binary_bytes() / 1e6);

  util::Timer t_ivf;
  const serve::IvfIndex ivf(store);
  const std::size_t cc = ivf.n_centroids();
  std::printf("IVF coarse quantizer: %zu centroids, k-means in %.1f s, default nprobe %zu\n",
              cc, t_ivf.seconds(), ivf.default_nprobe());

  // -- exact baselines: ground truth + the speedup denominator ---------------
  const serve::ShardedPrototypeStore sharded(store, 16);
  const auto truth = sharded.topk_float(emb, k);
  const double exact_float_ms =
      1e3 * best_seconds([&] { sharded.topk_float(emb, k); }, reps);
  const double exact_binary_ms =
      1e3 * best_seconds([&] { sharded.topk_binary(emb, k); }, reps);
  const double binary_ceiling = recall_at_k(sharded.topk_binary(emb, k), truth);
  std::printf("exact sharded scan, %zu queries: float %.1f ms, binary %.1f ms "
              "(binary recall ceiling %.4f)\n",
              n_queries, exact_float_ms, exact_binary_ms, binary_ceiling);

  // -- nprobe Pareto sweep ---------------------------------------------------
  util::Table sweep_table("nprobe Pareto — " + std::to_string(n_queries) + " queries, k=" +
                          std::to_string(k) + ", rerank=" + std::to_string(rerank));
  sweep_table.set_header({"nprobe", "swept", "ivf ms", "ivf R@k", "cascade ms",
                          "cascade R@k", "speedup"});
  std::vector<SweepPoint> sweep;
  std::vector<std::size_t> widths;
  for (std::size_t p = 1; p < ivf.default_nprobe(); p *= 4) widths.push_back(p);
  widths.push_back(ivf.default_nprobe());
  widths.push_back(std::min(cc, 4 * ivf.default_nprobe()));
  for (std::size_t nprobe : widths) {
    SweepPoint pt;
    pt.nprobe = nprobe;
    pt.ivf_ms = 1e3 * best_seconds([&] { ivf.topk_binary(emb, k, nprobe); }, reps);
    pt.ivf_recall = recall_at_k(ivf.topk_binary(emb, k, nprobe), truth);
    pt.cascade_ms =
        1e3 * best_seconds([&] { ivf.topk_cascade(emb, k, nprobe, rerank); }, reps);
    pt.cascade_recall = recall_at_k(ivf.topk_cascade(emb, k, nprobe, rerank), truth);
    pt.cascade_speedup = exact_float_ms / pt.cascade_ms;
    sweep.push_back(pt);
    sweep_table.add_row({std::to_string(nprobe),
                         util::Table::num(100.0 * nprobe / cc, 1) + "%",
                         util::Table::num(pt.ivf_ms, 1), util::Table::num(pt.ivf_recall, 4),
                         util::Table::num(pt.cascade_ms, 1),
                         util::Table::num(pt.cascade_recall, 4),
                         util::Table::num(pt.cascade_speedup, 2) + "x"});
  }
  sweep_table.print();

  // -- the serving defaults: the gated numbers -------------------------------
  const double default_ms =
      1e3 * best_seconds([&] { ivf.topk_cascade(emb, k, 0, rerank); }, reps);
  const double default_recall = recall_at_k(ivf.topk_cascade(emb, k, 0, rerank), truth);
  const double default_speedup = exact_float_ms / default_ms;
  const auto stats = ivf.probe_stats();
  const double prune_rate =
      stats.rows_swept ? static_cast<double>(stats.rows_pruned) / stats.rows_swept : 0.0;
  std::printf("defaults (nprobe=%zu, rerank=%zu): cascade %.1f ms, recall@%zu %.4f, "
              "%.2fx over exact float; early-exit pruned %.1f%% of swept rows\n",
              ivf.default_nprobe(), rerank, default_ms, k, default_recall, default_speedup,
              100.0 * prune_rate);

  // -- machine-readable artifact ---------------------------------------------
  if (args.has("json")) {
    const std::string json_path = args.get_str("json", "BENCH_ann.json");
    FILE* j = std::fopen(json_path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(j, "{\n");
    std::fprintf(j, "  \"bench\": \"ann_retrieval\",\n");
    std::fprintf(j,
                 "  \"config\": {\"classes\": %zu, \"dim\": %zu, \"expansion\": %zu, "
                 "\"queries\": %zu, \"k\": %zu, \"rerank\": %zu, \"centroids\": %zu, "
                 "\"default_nprobe\": %zu},\n",
                 classes, dim, expansion, n_queries, k, rerank, cc, ivf.default_nprobe());
    std::fprintf(j,
                 "  \"exact\": {\"float_ms\": %.3f, \"binary_ms\": %.3f, "
                 "\"binary_recall_ceiling\": %.5f},\n",
                 exact_float_ms, exact_binary_ms, binary_ceiling);
    std::fprintf(j, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      std::fprintf(j,
                   "    {\"nprobe\": %zu, \"ivf_ms\": %.3f, \"ivf_recall\": %.5f, "
                   "\"cascade_ms\": %.3f, \"cascade_recall\": %.5f, \"speedup\": %.3f}%s\n",
                   p.nprobe, p.ivf_ms, p.ivf_recall, p.cascade_ms, p.cascade_recall,
                   p.cascade_speedup, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j,
                 "  \"defaults\": {\"cascade_ms\": %.3f, \"recall\": %.5f, "
                 "\"speedup\": %.3f, \"prune_rate\": %.4f}\n",
                 default_ms, default_recall, default_speedup, prune_rate);
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // -- acceptance gates ------------------------------------------------------
  const double min_recall = args.get_double("min-recall", 0.0);
  const double min_speedup = args.get_double("min-speedup", 0.0);
  int rc = 0;
  if (min_recall > 0.0) {
    std::printf("recall@%zu at defaults: %.4f (gate >= %.4f: %s)\n", k, default_recall,
                min_recall, default_recall >= min_recall ? "PASS" : "FAIL");
    if (default_recall < min_recall) {
      std::fprintf(stderr, "FAIL: cascade recall %.4f below required %.4f\n", default_recall,
                   min_recall);
      rc = 1;
    }
  } else {
    std::printf("recall@%zu at defaults: %.4f (informational — no gate set)\n", k,
                default_recall);
  }
  if (min_speedup > 0.0) {
    std::printf("cascade speedup at defaults: %.2fx (gate >= %.2fx: %s)\n", default_speedup,
                min_speedup, default_speedup >= min_speedup ? "PASS" : "FAIL");
    if (default_speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: cascade speedup %.2fx below required %.2fx\n",
                   default_speedup, min_speedup);
      rc = 1;
    }
  } else {
    std::printf("cascade speedup at defaults: %.2fx (informational — no gate set)\n",
                default_speedup);
  }
  std::printf("wall time: %.1f s\n", wall.seconds());
  return rc;
}
