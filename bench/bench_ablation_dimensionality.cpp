// Ablation (the mechanism behind §II-b / §III-A): hypervector
// dimensionality d controls quasi-orthogonality (pairwise crosstalk
// ~1/sqrt(d)), which bounds how cleanly 28 co-active attributes can be read
// out of one embedding. Sweep d and report (i) the measured dictionary
// crosstalk, (ii) phase-II attribute extraction accuracy, (iii) ZSC top-1 —
// empirical support for the paper's "sufficiently high dimensionality"
// requirement and its d=1536 choice.
//
//   ./bench_ablation_dimensionality [--classes=24]
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  util::Timer timer;

  util::Table table("dimensionality ablation — quasi-orthogonality vs task accuracy");
  table.set_header({"d", "mean |cos| dictionary", "theory 1/sqrt(d)", "attr top-1 (%)",
                    "ZSC top-1 (%)"});

  auto space = data::AttributeSpace::cub();
  for (std::size_t d : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    // Dictionary crosstalk at this d.
    util::Rng drng(seed + d);
    hdc::FactoredDictionary dict(space.n_groups(), space.n_values(), space.hdc_pairs(), d,
                                 drng);
    std::vector<hdc::BipolarHV> sample;
    for (std::size_t x = 0; x < 40; ++x)
      sample.push_back(dict.attribute_vector(x * 7 % space.n_attributes()));
    const double crosstalk = hdc::mean_abs_pairwise_cosine(sample);

    // Full pipeline at this projection dimension.
    core::PipelineConfig cfg;
    cfg.n_classes = n_classes;
    cfg.images_per_class = 8;
    cfg.train_instances = 6;
    cfg.image_size = 32;
    cfg.zs_train_classes = n_classes * 3 / 4;
    cfg.model.image.proj_dim = d;
    cfg.run_phase1 = false;
    cfg.phase2 = {6, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.phase3 = {8, 16, 1e-2f, 1e-4f, 5.0f, true, false};
    cfg.augment.enabled = false;
    cfg.seed = seed;
    auto res = core::run_pipeline(cfg);

    table.add_row({std::to_string(d), util::Table::num(crosstalk, 4),
                   util::Table::num(1.0 / std::sqrt(static_cast<double>(d)), 4),
                   util::Table::num(100.0 * res.attributes.mean_top1, 1),
                   util::Table::num(100.0 * res.zsc.top1, 1)});
  }
  table.print();
  std::printf("\nreading: dictionary crosstalk tracks 1/sqrt(d) (quasi-orthogonality),\n"
              "and both the attribute-extraction head and ZSC degrade as d shrinks —\n"
              "the paper's argument for high-dimensional codebooks (it uses d=1536).\n");
  std::printf("wall time: %.1f s\n", timer.seconds());
  return 0;
}
