// Backbone compute-core benchmark: blocked GEMM vs. the seed naive matmul,
// whole-batch im2col conv vs. the seed per-image loop, and the end-to-end
// effect on serve::InferenceEngine::classify_batch.
//
// Three sections:
//  * gemm     — square GEMMs, single thread: gemm_accumulate (packed panels,
//               register-tiled, runtime-ISA-dispatched) vs. gemm_naive (the
//               seed i-k-j matmul loop). The 256^3 speedup is the PR's
//               headline acceptance number (target >= 3x).
//  * conv     — Conv2d::forward through the whole-batch column matrix vs. a
//               faithful copy of the seed per-image axpy conv.
//  * serving  — classify_batch images/s at batch 1 vs. batch 8 on a trained
//               engine: with the batched backbone, coalesced batches are now
//               cheaper per image through the embed itself.
//
// --json=PATH writes every measured number (the BENCH_backbone.json CI
// artifact, uploaded next to BENCH_serving.json).
//
//   ./bench_backbone_gemm [--classes=60] [--reps=5] [--json=BENCH_backbone.json]
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/pipeline.hpp"
#include "nn/conv2d.hpp"
#include "serve/engine.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

namespace {

/// Best-of-N wall seconds for fn().
template <typename Fn>
double best_seconds(Fn&& fn, std::size_t reps) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct GemmPoint {
  std::size_t size = 0;
  double naive_ms = 0.0, blocked_ms = 0.0, speedup = 0.0, blocked_gflops = 0.0;
};

GemmPoint bench_gemm_square(std::size_t s, std::size_t reps, util::Rng& rng) {
  tensor::Tensor a = tensor::Tensor::randn({s, s}, rng);
  tensor::Tensor b = tensor::Tensor::randn({s, s}, rng);
  std::vector<float> c(s * s);
  auto zero = [&] { std::memset(c.data(), 0, c.size() * sizeof(float)); };

  GemmPoint p;
  p.size = s;
  p.naive_ms = 1e3 * best_seconds(
                         [&] {
                           zero();
                           tensor::gemm_naive(tensor::Trans::N, tensor::Trans::N, s, s, s,
                                              a.data(), s, b.data(), s, c.data(), s);
                         },
                         reps);
  p.blocked_ms = 1e3 * best_seconds(
                           [&] {
                             zero();
                             tensor::gemm_accumulate(tensor::Trans::N, tensor::Trans::N, s, s, s,
                                                     a.data(), s, b.data(), s, c.data(), s);
                           },
                           reps);
  p.speedup = p.naive_ms / p.blocked_ms;
  p.blocked_gflops = 2.0 * static_cast<double>(s) * s * s / (p.blocked_ms * 1e6);
  return p;
}

/// Faithful copy of the seed Conv2d::forward: per-image im2col + axpy loops.
tensor::Tensor conv_forward_seed(const tensor::Tensor& x, const tensor::Tensor& w,
                                 std::size_t out_c, std::size_t kk, std::size_t stride,
                                 std::size_t pad) {
  const std::size_t batch = x.size(0), in_c = x.size(1), h = x.size(2), ww = x.size(3);
  const std::size_t oh = (h + 2 * pad - kk) / stride + 1, ow = (ww + 2 * pad - kk) / stride + 1;
  const std::size_t krows = in_c * kk * kk, ncols = oh * ow;
  tensor::Tensor y({batch, out_c, oh, ow});
  const float* W = w.data();
  const float* X = x.data();
  float* Y = y.data();
  util::parallel_for(0, batch, [&](std::size_t b) {
    std::vector<float> cols(krows * ncols);
    nn::im2col(X + b * in_c * h * ww, in_c, h, ww, kk, kk, stride, pad, cols.data());
    float* yb = Y + b * out_c * ncols;
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float* yrow = yb + oc * ncols;
      const float* wrow = W + oc * krows;
      std::memset(yrow, 0, ncols * sizeof(float));
      for (std::size_t r = 0; r < krows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        const float* crow = cols.data() + r * ncols;
        for (std::size_t c = 0; c < ncols; ++c) yrow[c] += wv * crow[c];
      }
    }
  }, 1);
  return y;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 5));
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 60));
  util::Timer wall;
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  // -- GEMM: blocked vs. seed naive, single thread ---------------------------
  util::set_worker_count(1);
  util::Table gemm_table(std::string("blocked GEMM vs seed naive matmul — single thread, "
                                     "kernel: ") +
                         tensor::gemm_kernel_name());
  gemm_table.set_header({"m=n=k", "naive ms", "blocked ms", "blocked GFLOP/s", "speedup"});
  std::vector<GemmPoint> gemm_points;
  double speedup_256 = 0.0;
  for (std::size_t s : {std::size_t{128}, std::size_t{256}, std::size_t{512}}) {
    GemmPoint p = bench_gemm_square(s, reps, rng);
    gemm_points.push_back(p);
    if (s == 256) speedup_256 = p.speedup;
    gemm_table.add_row({std::to_string(s), util::Table::num(p.naive_ms, 3),
                        util::Table::num(p.blocked_ms, 3),
                        util::Table::num(p.blocked_gflops, 1),
                        util::Table::num(p.speedup, 2) + "x"});
  }
  gemm_table.print();
  util::set_worker_count(0);  // restore default threading for the conv/serving sections

  // -- conv: whole-batch im2col + GEMM vs. seed per-image loop ----------------
  const std::size_t conv_batch = static_cast<std::size_t>(args.get_int("conv-batch", 8));
  nn::Conv2d conv(32, 64, 3, 1, 1, rng, /*bias=*/false);
  tensor::Tensor cx = tensor::Tensor::randn({conv_batch, 32, 32, 32}, rng);
  const tensor::Tensor& cw = conv.parameters()[0]->value;
  conv.forward(cx, false);  // warm scratch
  const double conv_new_ms =
      1e3 * best_seconds([&] { conv.forward(cx, false); }, reps);
  const double conv_seed_ms =
      1e3 * best_seconds([&] { conv_forward_seed(cx, cw, 64, 3, 1, 1); }, reps);
  const double conv_speedup = conv_seed_ms / conv_new_ms;
  {
    tensor::Tensor ref = conv_forward_seed(cx, cw, 64, 3, 1, 1);
    tensor::Tensor got = conv.forward(cx, false);
    std::printf("conv equivalence max |diff| = %g\n", tensor::max_abs_diff(ref, got));
  }
  util::Table conv_table("Conv2d forward (32->64ch, 3x3, 32x32, batch " +
                         std::to_string(conv_batch) + ")");
  conv_table.set_header({"path", "ms/batch", "ms/image", "speedup"});
  conv_table.add_row({"seed per-image axpy", util::Table::num(conv_seed_ms, 3),
                      util::Table::num(conv_seed_ms / conv_batch, 3), "1.00x"});
  conv_table.add_row({"whole-batch GEMM", util::Table::num(conv_new_ms, 3),
                      util::Table::num(conv_new_ms / conv_batch, 3),
                      util::Table::num(conv_speedup, 2) + "x"});
  conv_table.print();

  // -- serving: classify_batch images/s, batch 1 vs. batch 8 ------------------
  core::PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 4;
  cfg.train_instances = 3;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = n_classes / 3;
  cfg.model.image.proj_dim = 256;
  cfg.run_phase1 = false;
  cfg.run_phase2 = false;
  cfg.phase3 = {2, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.seed = 1;
  std::printf("training a small model for the serving section...\n");
  auto tp = core::run_pipeline_trained(cfg);
  auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(tp.model, tp.test_class_attributes);
  serve::InferenceEngine engine(snapshot, serve::ScoringMode::kFloatCosine);

  const tensor::Tensor& images = tp.test_set.images;
  const std::size_t n_images = images.size(0);
  const std::size_t chw = images.numel() / n_images;
  auto batch_of = [&](std::size_t b) {
    tensor::Tensor batch({b, images.size(1), images.size(2), images.size(3)});
    for (std::size_t i = 0; i < b; ++i)
      std::memcpy(batch.data() + i * chw, images.data() + (i % n_images) * chw,
                  chw * sizeof(float));
    return batch;
  };
  auto images_per_sec = [&](std::size_t bsz, std::size_t n_batches) {
    tensor::Tensor batch = batch_of(bsz);
    engine.classify_batch(batch);  // warm scratch
    const double secs =
        best_seconds([&] { for (std::size_t i = 0; i < n_batches; ++i)
                             engine.classify_batch(batch); }, reps);
    return static_cast<double>(bsz * n_batches) / secs;
  };
  const double ips_b1 = images_per_sec(1, 32);
  const double ips_b8 = images_per_sec(8, 4);
  const double batch8_vs_single = ips_b8 / ips_b1;

  util::Table serve_table("classify_batch — batched backbone, " +
                          std::to_string(tp.test_class_attributes.size(0)) + " classes");
  serve_table.set_header({"batch", "images/s", "vs batch 1"});
  serve_table.add_row({"1", util::Table::num(ips_b1, 1), "1.00x"});
  serve_table.add_row({"8", util::Table::num(ips_b8, 1),
                       util::Table::num(batch8_vs_single, 2) + "x"});
  serve_table.print();

  // -- machine-readable artifact ----------------------------------------------
  if (args.has("json")) {
    const std::string json_path = args.get_str("json", "BENCH_backbone.json");
    FILE* j = std::fopen(json_path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(j, "{\n");
    std::fprintf(j, "  \"bench\": \"backbone_gemm\",\n");
    std::fprintf(j, "  \"kernel\": \"%s\",\n", tensor::gemm_kernel_name());
    std::fprintf(j, "  \"gemm_single_thread\": [\n");
    for (std::size_t i = 0; i < gemm_points.size(); ++i) {
      const GemmPoint& p = gemm_points[i];
      std::fprintf(j,
                   "    {\"size\": %zu, \"naive_ms\": %.4f, \"blocked_ms\": %.4f, "
                   "\"blocked_gflops\": %.2f, \"speedup\": %.3f}%s\n",
                   p.size, p.naive_ms, p.blocked_ms, p.blocked_gflops, p.speedup,
                   i + 1 < gemm_points.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j, "  \"gemm_256_speedup\": %.3f,\n", speedup_256);
    std::fprintf(j,
                 "  \"conv_forward\": {\"batch\": %zu, \"seed_ms\": %.4f, \"batched_ms\": "
                 "%.4f, \"speedup\": %.3f},\n",
                 conv_batch, conv_seed_ms, conv_new_ms, conv_speedup);
    std::fprintf(j,
                 "  \"classify_batch\": {\"images_per_s_b1\": %.2f, \"images_per_s_b8\": "
                 "%.2f, \"batch8_vs_single\": %.3f}\n",
                 ips_b1, ips_b8, batch8_vs_single);
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // -- acceptance summary -----------------------------------------------------
  // --min-gemm-speedup turns the headline number into a hard gate (CI Release
  // jobs pass 3); the default 0 keeps local / sanitizer runs informational —
  // instrumented builds can't vectorize and would fail any floor.
  const double min_speedup = args.get_double("min-gemm-speedup", 0.0);
  if (min_speedup > 0.0) {
    std::printf("\n256^3 GEMM: blocked %.2fx over seed naive, single thread "
                "(gate >= %.1fx: %s)\n",
                speedup_256, min_speedup, speedup_256 >= min_speedup ? "PASS" : "FAIL");
  } else {
    std::printf("\n256^3 GEMM: blocked %.2fx over seed naive, single thread "
                "(3x reference %s; informational — no gate set)\n",
                speedup_256, speedup_256 >= 3.0 ? "met" : "not met");
  }
  std::printf("conv forward: whole-batch GEMM %.2fx over seed per-image loop\n", conv_speedup);
  std::printf("classify_batch: batch 8 serves %.2fx the images/s of batch 1 "
              "(improvement: %s)\n",
              batch8_vs_single, batch8_vs_single > 1.0 ? "PASS" : "FAIL");
  std::printf("wall time: %.1f s\n", wall.seconds());
  if (min_speedup > 0.0 && speedup_256 < min_speedup) {
    std::fprintf(stderr, "FAIL: 256^3 GEMM speedup %.2fx below required %.2fx\n", speedup_256,
                 min_speedup);
    return 1;
  }
  return 0;
}
