// Table I — attribute extraction on the noZS split: HDC-ZSC's phase-II
// head vs a Finetag-style BCE head (WMAP metric) and an A3M-style per-group
// softmax head (top-1% metric). The paper's CUB-200 numbers are printed
// next to our synthetic-dataset measurements; the claim under test is the
// *ordering* (ours >= baseline on both metric families) and the averages'
// direction, not absolute values (different substrate; see DESIGN.md).
//
//   ./bench_table1_attribute_extraction [--classes=16] [--epochs=5] [--full]
#include <cstdio>

#include "baselines/attribute_head.hpp"
#include "core/trainer.hpp"
#include "data/splits.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// Paper Table I (CUB-200): per-group {Finetag WMAP, Ours WMAP, A3M top-1%,
// Ours top-1%}, rows in AttributeSpace::cub() group order.
struct PaperRow {
  double finetag_wmap, ours_wmap, a3m_top1, ours_top1;
};
const PaperRow kPaper[28] = {
    {54, 58, 60, 90}, {57, 60, 45, 90}, {55, 57, 43, 90}, {59, 62, 58, 93},
    {15, 61, 58, 81}, {50, 53, 45, 91}, {25, 25, 34, 84}, {40, 42, 43, 93},
    {30, 33, 35, 89}, {58, 61, 57, 92}, {57, 61, 60, 93}, {76, 76, 81, 98},
    {73, 76, 72, 80}, {56, 59, 51, 92}, {42, 44, 38, 90}, {55, 58, 49, 92},
    {58, 61, 59, 93}, {24, 25, 32, 80}, {55, 56, 58, 81}, {47, 49, 57, 94},
    {44, 45, 46, 77}, {41, 43, 43, 77}, {60, 62, 62, 81}, {62, 66, 51, 90},
    {32, 37, 46, 92}, {42, 47, 47, 91}, {56, 60, 53, 93}, {48, 50, 48, 72}};

}  // namespace

int main(int argc, char** argv) {
  using namespace hdczsc;
  util::ArgMap args(argc, argv);
  const bool full = args.get_bool("full", false);
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", full ? 40 : 14));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", full ? 15 : 10));
  const std::size_t image_size = static_cast<std::size_t>(args.get_int("image", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  util::Timer timer;

  auto space = data::AttributeSpace::cub();
  data::CubSyntheticConfig dcfg;
  dcfg.n_classes = n_classes;
  dcfg.images_per_class = 8;
  dcfg.image_size = image_size;
  dcfg.seed = seed;
  data::CubSynthetic dataset(space, dcfg);

  // noZS protocol (as in the paper's Table I evaluation).
  auto split = data::make_nozs_split(n_classes, n_classes, seed);
  data::AugmentConfig no_aug;
  no_aug.enabled = false;
  const std::size_t train_hi = 6;
  data::DataLoader test(dataset, split.test_classes, train_hi, 8, 16, false, no_aug, seed);

  core::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 16;
  tcfg.lr = 1e-2f;

  // --- ours: HDC phase-II head ---------------------------------------------
  core::ZscModelConfig mcfg;
  mcfg.image.arch = "resnet_micro_flat";
  mcfg.image.proj_dim = 1536;
  
  util::Rng rng(seed);
  auto model = core::make_zsc_model(mcfg, space, rng);
  core::Trainer trainer(seed);
  {
    data::DataLoader train(dataset, split.train_classes, 0, train_hi, 16, true, no_aug, seed);
    trainer.phase2_attribute_extraction(*model, train, tcfg);
  }
  auto ours = trainer.evaluate_attributes(*model, test);

  // --- baselines -------------------------------------------------------------
  auto run_baseline = [&](const char* variant) {
    util::Rng brng(seed + 7);
    baselines::AttributeHeadConfig bcfg;
    bcfg.variant = variant;
    bcfg.image.arch = "resnet_micro_flat";
    baselines::AttributeHeadBaseline baseline(space, bcfg, brng);
    data::DataLoader train(dataset, split.train_classes, 0, train_hi, 16, true, no_aug,
                           seed + 3);
    baseline.train(train, tcfg);
    return baseline.evaluate(test);
  };
  auto finetag = run_baseline("finetag");
  auto a3m = run_baseline("a3m");

  // --- report ------------------------------------------------------------------
  util::Table table(
      "Table I — attribute extraction (noZS split); paper columns are CUB-200, "
      "measured columns are the synthetic substrate");
  table.set_header({"attribute group", "Finetag WMAP (paper)", "Ours WMAP (paper)",
                    "Finetag WMAP (meas)", "Ours WMAP (meas)", "A3M top1 (paper)",
                    "Ours top1 (paper)", "A3M top1 (meas)", "Ours top1 (meas)"});
  for (std::size_t g = 0; g < space.n_groups(); ++g) {
    table.add_row({space.group(g).name, util::Table::num(kPaper[g].finetag_wmap, 0),
                   util::Table::num(kPaper[g].ours_wmap, 0),
                   util::Table::num(100.0 * finetag.per_group_wmap[g], 1),
                   util::Table::num(100.0 * ours.per_group_wmap[g], 1),
                   util::Table::num(kPaper[g].a3m_top1, 0),
                   util::Table::num(kPaper[g].ours_top1, 0),
                   util::Table::num(100.0 * a3m.per_group_top1[g], 1),
                   util::Table::num(100.0 * ours.per_group_top1[g], 1)});
  }
  table.add_row({"average", "48.96", "53.11", util::Table::num(100.0 * finetag.mean_wmap, 2),
                 util::Table::num(100.0 * ours.mean_wmap, 2), "51.11", "87.82",
                 util::Table::num(100.0 * a3m.mean_top1, 2),
                 util::Table::num(100.0 * ours.mean_top1, 2)});
  table.print();

  std::printf("\nshape check (paper: ours beats Finetag by +4.14 WMAP and A3M by +36.71 "
              "top-1%%):\n");
  std::printf("  measured WMAP delta  (ours - finetag): %+.2f\n",
              100.0 * (ours.mean_wmap - finetag.mean_wmap));
  std::printf("  measured top-1 delta (ours - a3m):     %+.2f\n",
              100.0 * (ours.mean_top1 - a3m.mean_top1));
  std::printf("  wall time: %.1f s\n", timer.seconds());
  return 0;
}
