// Serving-throughput Pareto: dynamic batching vs. single-request serving,
// and float-cosine vs. bit-packed binary prototype scoring.
//
// Three serving configurations are measured end-to-end under a concurrent
// request storm:
//  * direct      — no snapshot, no batching: every request pays a full
//                  ZscModel::class_logits (which re-encodes ϕ(A) and
//                  re-normalizes the prototypes per call) — what serving
//                  looked like before src/serve/ existed.
//  * engine b=1  — frozen snapshot, but one request per forward.
//  * engine b=N  — snapshot + DynamicBatcher coalescing at max_batch N.
// plus a scoring-stage microbenchmark isolating the per-query cost of the
// float cosine sweep vs. the XOR+popcount Hamming sweep, a cold-start
// section (retrain vs. .hdcsnap snapshot load) and a multi-model routing
// overhead measurement (ModelRegistry vs. a bare ServerRuntime).
//
// A sharded-scan section measures scatter/gather top-k retrieval
// (serve/sharded_store) against the flat full-logits + argsort path over a
// synthetic very-large label space: a (classes × shards) throughput curve
// on both scoring paths, written to its own artifact
// (--sharded-json=BENCH_sharded.json) so the scaling curve lands next to
// BENCH_serving.json.
//
// A GZSL section serves the *joint* seen+unseen label space and sweeps the
// calibrated-stacking penalty: per-domain accuracy, harmonic mean and
// served throughput per penalty point (the handicap must be telemetry-
// visible and throughput-neutral), plus a bit-identity check of the
// penalized sharded binary top-k against the penalized float argsort —
// written to --gzsl-json=BENCH_gzsl.json.
//
// An observability-overhead section storms the same runtime with the full
// instrumentation stack live (stats + per-request stage tracing + kernel
// profiling histograms) and with tracing/profiling off, and reports the
// throughput delta — the "metrics must not distort the p99 they report"
// acceptance number (target ≤ 3 %).
//
// --json=PATH writes every measured number as a machine-readable JSON
// document (the BENCH_serving.json CI artifact); --metrics-json=PATH
// additionally dumps every metric the instrumented storm registered
// (obs::to_json — the metrics.json CI artifact).
//
//   ./bench_serving_throughput [--classes=60] [--requests=512] [--clients=4]
//                              [--models=4] [--json=BENCH_serving.json]
//                              [--sharded-json=BENCH_sharded.json]
//                              [--gzsl-json=BENCH_gzsl.json]
//                              [--metrics-json=metrics.json]
//                              [--topk=10] [--scan-queries=48]
#include <algorithm>
#include <cstdio>
#include <future>
#include <numeric>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "serve/model_registry.hpp"
#include "serve/sharded_store.hpp"
#include "tensor/ops.hpp"
#include "util/config.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdczsc;

namespace {

/// Copy image `b` of a [N, 3, S, S] batch into its own [3, S, S] tensor.
nn::Tensor slice_image(const nn::Tensor& images, std::size_t b) {
  const std::size_t per = images.numel() / images.size(0);
  nn::Tensor out({images.size(1), images.size(2), images.size(3)});
  const float* src = images.data() + b * per;
  std::copy(src, src + per, out.data());
  return out;
}

struct RunResult {
  double throughput_rps = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
};

/// The one request-storm loop every serving measurement shares (so the
/// bare-runtime and registry numbers stay comparable): `clients` threads,
/// each submitting async bursts so the queue stays deep enough for full
/// coalescing windows. `submit(req)` maps a global request index to a
/// prediction future. Returns wall seconds for the whole storm.
template <typename Submit>
double storm_wall_seconds(Submit&& submit, std::size_t n_requests, std::size_t clients) {
  const std::size_t per_client = n_requests / clients;
  const std::size_t burst = 16;
  util::Timer t;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::invoke_result_t<Submit&, std::size_t>> inflight;
      for (std::size_t r = 0; r < per_client; ++r) {
        inflight.push_back(submit(c * per_client + r));
        if (inflight.size() >= burst) {
          for (auto& f : inflight) f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (auto& th : threads) th.join();
  return t.seconds();
}

/// Storm a single runtime; latency/batch detail comes from its stats.
RunResult storm(serve::ServerRuntime& server, const nn::Tensor& images,
                std::size_t n_requests, std::size_t clients) {
  server.stats().reset();
  const std::size_t n_images = images.size(0);
  storm_wall_seconds(
      [&](std::size_t req) {
        serve::InferRequest r;
        r.input = slice_image(images, req % n_images);
        return server.submit(std::move(r));
      },
      n_requests, clients);
  const auto s = server.stats().summary();
  return {s.throughput_rps, s.p50_latency_ms, s.p99_latency_ms, s.mean_batch_size};
}

/// Storm the registry, round-robining requests across `keys`. Returns
/// wall-clock requests/s (the cross-model aggregate the per-model stats
/// can't see).
double storm_registry(serve::ModelRegistry& registry, const std::vector<std::string>& keys,
                      const nn::Tensor& images, std::size_t n_requests, std::size_t clients) {
  const std::size_t n_images = images.size(0);
  const std::size_t per_client = n_requests / clients;
  const double secs = storm_wall_seconds(
      [&](std::size_t req) {
        serve::InferRequest r;
        r.model_key = keys[req % keys.size()];
        r.input = slice_image(images, req % n_images);
        return registry.submit(std::move(r));
      },
      n_requests, clients);
  return static_cast<double>(per_client * clients) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgMap args(argc, argv);
  // CUB-scale serving: ~100 classes in the served label space (the paper's
  // ZS test split is 50 of 200; heavy-traffic serving would cover more).
  const std::size_t n_classes = static_cast<std::size_t>(args.get_int("classes", 140));
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train-classes", 40));
  const std::size_t n_requests = static_cast<std::size_t>(args.get_int("requests", 512));
  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  util::Timer wall;

  // -- train a small model, freeze a snapshot --------------------------------
  core::PipelineConfig cfg;
  cfg.n_classes = n_classes;
  cfg.images_per_class = 4;
  cfg.train_instances = 3;
  cfg.image_size = 32;
  cfg.split = "zs";
  cfg.zs_train_classes = n_train;
  cfg.model.image.proj_dim = 256;
  cfg.run_phase1 = false;
  cfg.run_phase2 = false;
  cfg.phase3 = {3, 16, 1e-2f, 1e-4f, 5.0f, true, false};
  cfg.augment.enabled = false;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.snapshot_gzsl = true;  // also hand back the seen-domain artifacts (GZSL section)
  std::printf("training (%zu classes, %zu served)...\n", n_classes,
              n_classes - cfg.zs_train_classes);
  auto tp = core::run_pipeline_trained(cfg);
  const nn::Tensor& images = tp.test_set.images;
  const std::size_t n_served_classes = tp.test_class_attributes.size(0);

  auto snapshot = std::make_shared<const serve::ModelSnapshot>(
      tp.model, tp.test_class_attributes);

  // -- baseline: direct single-request class_logits --------------------------
  std::printf("measuring direct single-request baseline...\n");
  util::Timer t0;
  const std::size_t n_direct = std::min<std::size_t>(n_requests, 128);
  for (std::size_t r = 0; r < n_direct; ++r) {
    nn::Tensor one = slice_image(images, r % images.size(0))
                         .reshape({1, images.size(1), images.size(2), images.size(3)});
    auto logits = tp.model->class_logits(one, tp.test_class_attributes, false);
    tensor::argmax_rows(logits);
  }
  const double direct_rps = static_cast<double>(n_direct) / t0.seconds();
  const double direct_ms = 1e3 * t0.seconds() / static_cast<double>(n_direct);

  // -- serving configurations ------------------------------------------------
  util::Table table("serving throughput — " + std::to_string(n_requests) + " requests, " +
                    std::to_string(clients) + " client threads, " +
                    std::to_string(n_served_classes) + " classes");
  table.set_header({"config", "scoring", "max batch", "req/s", "p50 ms", "p99 ms",
                    "mean batch", "vs direct"});
  table.add_row({"direct (no snapshot)", "float-cosine", "1", util::Table::num(direct_rps, 1),
                 util::Table::num(direct_ms, 2), util::Table::num(direct_ms, 2), "1.00",
                 "1.00x"});

  struct EngineRow {
    std::string scoring;
    std::size_t max_batch;
    RunResult r;
  };
  std::vector<EngineRow> engine_rows;
  double batched8_rps = 0.0;
  for (serve::ScoringMode mode :
       {serve::ScoringMode::kFloatCosine, serve::ScoringMode::kBinaryHamming}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                                  std::size_t{32}}) {
      auto engine = std::make_shared<const serve::InferenceEngine>(snapshot, mode);
      serve::ServerConfig scfg;
      scfg.n_workers = 1;
      scfg.batch.max_batch = max_batch;
      scfg.batch.max_delay_ms = 2.0;
      scfg.batch.max_queue_depth = 4096;
      serve::ServerRuntime server(engine, scfg);
      server.start();
      RunResult r = storm(server, images, n_requests, clients);
      server.stop();
      table.add_row({"engine", scoring_mode_name(mode), std::to_string(max_batch),
                     util::Table::num(r.throughput_rps, 1), util::Table::num(r.p50_ms, 2),
                     util::Table::num(r.p99_ms, 2), util::Table::num(r.mean_batch, 2),
                     util::Table::num(r.throughput_rps / direct_rps, 2) + "x"});
      engine_rows.push_back({scoring_mode_name(mode), max_batch, r});
      if (mode == serve::ScoringMode::kFloatCosine && max_batch == 8)
        batched8_rps = r.throughput_rps;
    }
  }
  table.print();

  // -- scoring-stage microbenchmark: float cosine vs. packed Hamming ---------
  nn::Tensor emb = snapshot->embed(images);
  const std::size_t n_queries = emb.size(0), d = emb.size(1);
  auto expanded = std::make_shared<const serve::ModelSnapshot>(
      tp.model, tp.test_class_attributes, 8);

  auto time_scoring = [&](auto&& score_one) {
    // Score row-by-row (the per-query serving view), repeated for stability.
    const std::size_t reps = 50;
    util::Timer t;
    for (std::size_t rep = 0; rep < reps; ++rep)
      for (std::size_t i = 0; i < n_queries; ++i) score_one(i);
    return 1e6 * t.seconds() / static_cast<double>(reps * n_queries);
  };
  const auto& store1 = snapshot->prototypes();
  const auto& store8 = expanded->prototypes();
  auto row = [&](std::size_t i) {
    return tensor::Tensor({1, d},
                          std::vector<float>(emb.data() + i * d, emb.data() + (i + 1) * d));
  };
  const double us_float = time_scoring([&](std::size_t i) { store1.score_float(row(i)); });
  const double us_bin1 = time_scoring([&](std::size_t i) { store1.score_binary(row(i)); });
  const double us_bin8 = time_scoring([&](std::size_t i) { store8.score_binary(row(i)); });

  // Argmax agreement of each binary store with the float path.
  auto fl = tensor::argmax_rows(store1.score_float(emb));
  auto agreement = [&](const serve::PrototypeStore& st) {
    auto bl = tensor::argmax_rows(st.score_binary(emb));
    std::size_t a = 0;
    for (std::size_t i = 0; i < fl.size(); ++i) a += fl[i] == bl[i];
    return static_cast<double>(a) / static_cast<double>(fl.size());
  };

  const double agree1 = agreement(store1);
  const double agree8 = agreement(store8);
  util::Table pareto("prototype scoring Pareto — per-query scoring stage, C=" +
                     std::to_string(n_served_classes) + ", d=" + std::to_string(d));
  pareto.set_header({"path", "code bits", "us/query", "store bytes", "argmax agreement"});
  pareto.add_row({"float cosine", "-", util::Table::num(us_float, 2),
                  std::to_string(store1.float_bytes()), "1.000"});
  pareto.add_row({"binary hamming x1", std::to_string(store1.code_bits()),
                  util::Table::num(us_bin1, 2), std::to_string(store1.binary_bytes()),
                  util::Table::num(agree1, 3)});
  pareto.add_row({"binary hamming x8 (LSH)", std::to_string(store8.code_bits()),
                  util::Table::num(us_bin8, 2), std::to_string(store8.binary_bytes()),
                  util::Table::num(agree8, 3)});
  pareto.print();

  // -- cold start: retrain vs .hdcsnap load ----------------------------------
  const std::string snap_path = args.get_str("snapshot-path", "bench_serving.hdcsnap");
  util::Timer t_save;
  serve::save_snapshot_file(snap_path, *snapshot);
  const double save_s = t_save.seconds();
  util::Timer t_load;
  auto reloaded = serve::load_snapshot_file(snap_path);
  const double load_s = t_load.seconds();
  const double retrain_s = tp.result.train_seconds;
  std::remove(snap_path.c_str());

  util::Table cold("server cold start — " + std::to_string(n_served_classes) +
                   " served classes");
  cold.set_header({"path", "seconds", "vs retrain"});
  cold.add_row({"retrain from scratch", util::Table::num(retrain_s, 3), "1.00x"});
  cold.add_row({"snapshot save (once, offline)", util::Table::num(save_s, 3), "-"});
  cold.add_row({"snapshot load (per replica)", util::Table::num(load_s, 3),
                util::Table::num(retrain_s / load_s, 1) + "x faster"});
  cold.print();

  // -- multi-model routing overhead ------------------------------------------
  const std::size_t n_models =
      static_cast<std::size_t>(std::max<long>(1, args.get_int("models", 4)));
  serve::ServerConfig rcfg;
  rcfg.n_workers = 1;
  rcfg.batch.max_batch = 8;
  rcfg.batch.max_delay_ms = 2.0;
  rcfg.batch.max_queue_depth = 4096;

  auto registry_rps = [&](std::size_t k) {
    serve::ModelRegistry registry(rcfg);
    std::vector<std::string> keys;
    for (std::size_t m = 0; m < k; ++m) {
      keys.push_back("m" + std::to_string(m));
      registry.load(keys.back(), reloaded, serve::ScoringMode::kFloatCosine);
    }
    const double rps = storm_registry(registry, keys, images, n_requests, clients);
    registry.stop_all();
    return rps;
  };
  const double reg1_rps = registry_rps(1);
  const double regN_rps = registry_rps(n_models);
  const double routing_overhead_pct = 100.0 * (1.0 - reg1_rps / batched8_rps);

  util::Table multi("multi-model routing — float cosine, max_batch=8");
  multi.set_header({"host", "models", "req/s", "vs bare runtime"});
  multi.add_row({"bare ServerRuntime", "1", util::Table::num(batched8_rps, 1), "1.00x"});
  multi.add_row({"ModelRegistry", "1", util::Table::num(reg1_rps, 1),
                 util::Table::num(reg1_rps / batched8_rps, 2) + "x"});
  multi.add_row({"ModelRegistry", std::to_string(n_models), util::Table::num(regN_rps, 1),
                 util::Table::num(regN_rps / batched8_rps, 2) + "x"});
  multi.print();

  // -- observability overhead: full instrumentation vs instrumentation off --
  // Same engine, same request set, two runtimes: one with per-request
  // stage tracing + kernel profiling live (every histogram/counter in the
  // stack recording), one with tracing and profiling disabled. The true
  // cost per request is sub-microsecond against hundreds of microseconds
  // of work, so a threaded open storm would drown it in scheduler noise;
  // instead a single thread enqueues the whole set and drains the
  // futures — the worker loop (the instrumented path) runs saturated and
  // the wall clock measures it, not client-thread scheduling. A discarded
  // warmup pass per side, then seven interleaved best-of passes so any
  // remaining drift hits both sides alike.
  std::printf("measuring observability overhead (tracing+profiling on vs off)...\n");
  auto obs_storm = [&](bool instrumented) {
    obs::set_profiling_enabled(instrumented);
    auto engine = std::make_shared<const serve::InferenceEngine>(snapshot,
                                                                 serve::ScoringMode::kFloatCosine);
    serve::ServerConfig ocfg;
    ocfg.n_workers = 1;
    ocfg.batch.max_batch = 8;
    ocfg.batch.max_delay_ms = 2.0;
    ocfg.batch.max_queue_depth = 4096;  // >= n_requests: the drain never rejects
    ocfg.tracing = instrumented;
    if (instrumented) ocfg.name = "obs_bench";  // registered series → exporter-visible
    serve::ServerRuntime server(engine, ocfg);
    server.start();
    const std::size_t n_images = images.size(0);
    util::Timer clock;
    std::vector<std::future<serve::InferResult>> futs;
    futs.reserve(n_requests);
    for (std::size_t r = 0; r < n_requests; ++r) {
      serve::InferRequest req;
      req.input = slice_image(images, r % n_images);
      futs.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futs) f.get();
    const double secs = clock.seconds();
    RunResult r;
    r.throughput_rps = static_cast<double>(n_requests) / secs;
    r.p99_ms = server.stats().summary().p99_latency_ms;
    server.stop();
    obs::set_profiling_enabled(false);
    return r;
  };
  obs_storm(false);  // warmup: page in code + data, settle the scheduler
  obs_storm(true);
  double obs_off_rps = 0.0, obs_on_rps = 0.0, obs_on_p99 = 0.0;
  for (int pass = 0; pass < 7; ++pass) {
    obs_off_rps = std::max(obs_off_rps, obs_storm(false).throughput_rps);
    const RunResult on = obs_storm(true);
    if (on.throughput_rps > obs_on_rps) {
      obs_on_rps = on.throughput_rps;
      obs_on_p99 = on.p99_ms;
    }
  }
  const double obs_overhead_pct = 100.0 * (1.0 - obs_on_rps / obs_off_rps);
  const bool obs_pass = obs_overhead_pct <= 3.0;
  util::Table obs_tbl("observability overhead — float cosine, max_batch=8, best of 7");
  obs_tbl.set_header({"instrumentation", "req/s", "p99 ms", "overhead"});
  obs_tbl.add_row({"off (no tracing, no profiling)", util::Table::num(obs_off_rps, 1), "-",
                   "baseline"});
  obs_tbl.add_row({"on (stats+tracing+profiling)", util::Table::num(obs_on_rps, 1),
                   util::Table::num(obs_on_p99, 2),
                   util::Table::num(obs_overhead_pct, 2) + " %"});
  obs_tbl.print();

  // -- sharded scan: scatter/gather top-k vs flat full-logits retrieval ------
  // Synthetic very-large label spaces (no training needed: retrieval only
  // touches the frozen store), swept over (classes × shards) on both
  // scoring paths. The flat baseline is what serving did before sharding:
  // materialize full [B, C] logits, then argsort every class per query.
  const std::size_t scan_k = static_cast<std::size_t>(args.get_int("topk", 10));
  const std::size_t scan_q = static_cast<std::size_t>(args.get_int("scan-queries", 48));
  const std::size_t scan_d = 256;
  const std::vector<std::size_t> scan_classes = {1000, 4000, 12000};
  const std::vector<std::size_t> scan_shards = {1, 2, 4, 8};

  // Adaptive repetition: run each retrieval closure until ≥ 0.25 s of wall
  // time (≥ 2 reps), so cheap binary sweeps get stable timings without the
  // big float GEMMs repeating for seconds.
  auto queries_per_second = [&](auto&& run_once) {
    run_once();  // warm-up (touch the store once)
    util::Timer t;
    std::size_t reps = 0;
    do {
      run_once();
      ++reps;
    } while (t.seconds() < 0.25 || reps < 2);
    return static_cast<double>(reps * scan_q) / t.seconds();
  };

  struct ScanPoint {
    std::size_t classes, shards;
    double binary_qps, float_qps, binary_speedup, float_speedup;
  };
  std::vector<ScanPoint> curve;
  double accept_binary_speedup = 0.0;  // S=4 at the largest label space
  bool sharded_exact = true;
  util::Table sharded_tbl("sharded scan — top-" + std::to_string(scan_k) + " of C classes, " +
                          std::to_string(scan_q) + " queries, d=" + std::to_string(scan_d));
  sharded_tbl.set_header({"classes", "shards", "binary q/s", "vs flat", "float q/s",
                          "vs flat"});
  for (std::size_t c : scan_classes) {
    util::Rng srng(0x5ca1ab1eULL + c);
    const serve::PrototypeStore store(nn::Tensor::randn({c, scan_d}, srng), 4.0f);
    const nn::Tensor q = nn::Tensor::randn({scan_q, scan_d}, srng);

    const double flat_bin = queries_per_second(
        [&] { tensor::topk_rows(store.score_binary(q), scan_k); });
    const double flat_fl = queries_per_second(
        [&] { tensor::topk_rows(store.score_float(q), scan_k); });
    sharded_tbl.add_row({std::to_string(c), "flat", util::Table::num(flat_bin, 0), "1.00x",
                         util::Table::num(flat_fl, 0), "1.00x"});

    for (std::size_t s : scan_shards) {
      const serve::ShardedPrototypeStore sharded(store, s);
      const double bin = queries_per_second([&] { sharded.topk_binary(q, scan_k); });
      const double fl = queries_per_second([&] { sharded.topk_float(q, scan_k); });
      curve.push_back({c, s, bin, fl, bin / flat_bin, fl / flat_fl});
      sharded_tbl.add_row({std::to_string(c), std::to_string(s), util::Table::num(bin, 0),
                           util::Table::num(bin / flat_bin, 2) + "x",
                           util::Table::num(fl, 0),
                           util::Table::num(fl / flat_fl, 2) + "x"});
      if (c == scan_classes.back() && s == 4) {
        accept_binary_speedup = bin / flat_bin;
        // Exactness spot-check: the gathered top-k must equal the flat
        // argsort (binary path: bit-identical at any scale).
        const auto logits = store.score_binary(q);
        const auto hits = sharded.topk_binary(q, scan_k);
        for (std::size_t b = 0; b < scan_q && sharded_exact; ++b) {
          std::vector<std::size_t> order(c);
          const float* row = logits.data() + b * c;
          std::iota(order.begin(), order.end(), std::size_t{0});
          std::sort(order.begin(), order.end(), [row](std::size_t x, std::size_t y) {
            return row[x] > row[y] || (row[x] == row[y] && x < y);
          });
          for (std::size_t i = 0; i < scan_k; ++i)
            if (hits[b][i].label != order[i] || hits[b][i].score != row[order[i]])
              sharded_exact = false;
        }
      }
    }
  }
  sharded_tbl.print();
  std::printf("sharded top-k == flat argsort (binary, C=%zu, S=4): %s\n",
              scan_classes.back(), sharded_exact ? "PASS" : "FAIL");

  // -- sharded-scan artifact (BENCH_sharded.json, uploaded next to
  //    BENCH_serving.json) ----------------------------------------------------
  if (args.has("json") || args.has("sharded-json")) {
    const std::string spath = args.get_str("sharded-json", "BENCH_sharded.json");
    FILE* j = std::fopen(spath.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", spath.c_str());
      return 1;
    }
    std::fprintf(j, "{\n  \"bench\": \"sharded_scan\",\n");
    std::fprintf(j, "  \"dim\": %zu,\n  \"topk\": %zu,\n  \"queries\": %zu,\n", scan_d,
                 scan_k, scan_q);
    std::fprintf(j, "  \"curve\": [\n");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& p = curve[i];
      std::fprintf(j,
                   "    {\"classes\": %zu, \"shards\": %zu, \"binary_qps\": %.1f, "
                   "\"binary_speedup_vs_flat\": %.3f, \"float_qps\": %.1f, "
                   "\"float_speedup_vs_flat\": %.3f}%s\n",
                   p.classes, p.shards, p.binary_qps, p.binary_speedup, p.float_qps,
                   p.float_speedup, i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j,
                 "  \"acceptance\": {\"classes\": %zu, \"shards\": 4, "
                 "\"binary_speedup_vs_flat\": %.3f, \"target\": 1.5, "
                 "\"exact_vs_flat_argsort\": %s, \"pass\": %s}\n",
                 scan_classes.back(), accept_binary_speedup,
                 sharded_exact ? "true" : "false",
                 accept_binary_speedup >= 1.5 && sharded_exact ? "true" : "false");
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("wrote %s\n", spath.c_str());
  }

  // -- GZSL serving: joint seen+unseen label space, calibrated stacking ------
  // The snapshot freezes both domains (seen classes first, partition mask
  // in the .hdcsnap v3 record); the penalty sweep shows the seen/unseen
  // accuracy trade the knob buys and that the handicap is throughput-
  // neutral (one integer offset per seen row on the binary path). Eval
  // sets: held-out *instances* of the training classes (seen domain) and
  // the held-out classes (unseen domain), joint labels seen-first.
  auto gzsl_snapshot = serve::make_gzsl_snapshot(tp.model, tp.seen_class_attributes,
                                                 tp.test_class_attributes, /*expansion=*/8);
  const std::size_t n_seen_classes = tp.seen_class_attributes.size(0);
  const data::Batch joint = core::joint_gzsl_eval_set(tp);
  const nn::Tensor& joint_images = joint.images;
  const std::vector<std::size_t>& joint_labels = joint.labels;

  const float gzsl_scale = gzsl_snapshot->scale();
  struct GzslPoint {
    double penalty, seen_acc, unseen_acc, harmonic, rps;
  };
  std::vector<GzslPoint> gzsl_curve;
  bool gzsl_exact = true;

  util::Table gz("GZSL serving — joint " + std::to_string(gzsl_snapshot->n_seen()) + "+" +
                 std::to_string(gzsl_snapshot->n_unseen()) +
                 " label space, binary-hamming, penalty sweep");
  gz.set_header({"penalty", "seen acc", "unseen acc", "harmonic mean", "req/s"});
  for (double frac : {0.0, 0.05, 0.15, 0.3, 0.6}) {
    const float p = static_cast<float>(frac) * gzsl_scale;
    auto gengine = std::make_shared<const serve::InferenceEngine>(
        gzsl_snapshot, serve::ScoringMode::kBinaryHamming, /*n_shards=*/1, p);

    // Per-domain accuracy of the penalized decisions (direct inference;
    // the storm below serves bit-identical ones).
    const auto preds = gengine->classify_batch(joint_images);
    std::size_t sn = 0, sok = 0, un = 0, uok = 0;
    for (std::size_t i = 0; i < joint_labels.size(); ++i) {
      const bool seen = joint_labels[i] < n_seen_classes;
      (seen ? sn : un) += 1;
      (seen ? sok : uok) += preds[i].label == joint_labels[i];
    }
    const double sa = sn ? static_cast<double>(sok) / static_cast<double>(sn) : 0.0;
    const double ua = un ? static_cast<double>(uok) / static_cast<double>(un) : 0.0;
    const double hm = sa + ua > 0.0 ? 2.0 * sa * ua / (sa + ua) : 0.0;

    serve::ServerConfig gcfg;
    gcfg.n_workers = 1;
    gcfg.batch.max_batch = 8;
    gcfg.batch.max_delay_ms = 2.0;
    gcfg.batch.max_queue_depth = 4096;
    serve::ServerRuntime server(gengine, gcfg);
    server.start();
    const RunResult r =
        storm(server, joint_images, std::max<std::size_t>(n_requests / 2, 128), clients);
    server.stop();

    gzsl_curve.push_back({static_cast<double>(p), sa, ua, hm, r.throughput_rps});
    gz.add_row({util::Table::num(p, 3), util::Table::num(sa, 3), util::Table::num(ua, 3),
                util::Table::num(hm, 3), util::Table::num(r.throughput_rps, 1)});

    // Exactness: the penalized sharded binary top-k must reproduce the
    // penalized float full-argsort (flat logits) bit-for-bit — the ISSUE
    // acceptance bar, re-checked here on real trained prototypes.
    if (frac == 0.15) {
      const serve::InferenceEngine sharded4(gzsl_snapshot,
                                            serve::ScoringMode::kBinaryHamming, 4, p);
      const std::size_t nq = std::min<std::size_t>(8, joint_images.size(0));
      nn::Tensor probe({nq, joint_images.size(1), joint_images.size(2),
                        joint_images.size(3)});
      std::copy(joint_images.data(), joint_images.data() + probe.numel(), probe.data());
      const auto hits = sharded4.topk_batch(probe, 5);
      const auto logits = sharded4.logits(probe);
      const std::size_t cc = logits.size(1);
      for (std::size_t b = 0; b < nq && gzsl_exact; ++b) {
        const float* row = logits.data() + b * cc;
        std::vector<std::size_t> order(cc);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [row](std::size_t x, std::size_t y) {
          return row[x] > row[y] || (row[x] == row[y] && x < y);
        });
        for (std::size_t i = 0; i < hits[b].size(); ++i)
          if (hits[b][i].label != order[i] || hits[b][i].score != row[order[i]])
            gzsl_exact = false;
      }
    }
  }
  gz.print();
  std::printf("penalized sharded top-k == penalized float argsort: %s\n",
              gzsl_exact ? "PASS" : "FAIL");

  // -- GZSL artifact (BENCH_gzsl.json, uploaded next to the others) ----------
  if (args.has("json") || args.has("gzsl-json")) {
    const std::string gpath = args.get_str("gzsl-json", "BENCH_gzsl.json");
    FILE* j = std::fopen(gpath.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", gpath.c_str());
      return 1;
    }
    std::fprintf(j, "{\n  \"bench\": \"gzsl_serving\",\n");
    std::fprintf(j, "  \"seen_classes\": %zu,\n  \"unseen_classes\": %zu,\n",
                 gzsl_snapshot->n_seen(), gzsl_snapshot->n_unseen());
    std::fprintf(j, "  \"scale\": %.4f,\n  \"scoring\": \"binary-hamming\",\n",
                 static_cast<double>(gzsl_scale));
    std::fprintf(j, "  \"curve\": [\n");
    for (std::size_t i = 0; i < gzsl_curve.size(); ++i) {
      const auto& c = gzsl_curve[i];
      std::fprintf(j,
                   "    {\"penalty\": %.4f, \"seen_acc\": %.4f, \"unseen_acc\": %.4f, "
                   "\"harmonic_mean\": %.4f, \"rps\": %.1f}%s\n",
                   c.penalty, c.seen_acc, c.unseen_acc, c.harmonic, c.rps,
                   i + 1 < gzsl_curve.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j,
                 "  \"acceptance\": {\"penalized_topk_exact_vs_float_argsort\": %s, "
                 "\"pass\": %s}\n",
                 gzsl_exact ? "true" : "false", gzsl_exact ? "true" : "false");
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("wrote %s\n", gpath.c_str());
  }

  // -- machine-readable artifact (the BENCH_serving.json CI upload) ----------
  if (args.has("json")) {
    const std::string json_path = args.get_str("json", "BENCH_serving.json");
    FILE* j = std::fopen(json_path.c_str(), "w");
    if (!j) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(j, "{\n");
    std::fprintf(j, "  \"bench\": \"serving_throughput\",\n");
    std::fprintf(j, "  \"requests\": %zu,\n  \"clients\": %zu,\n", n_requests, clients);
    std::fprintf(j, "  \"served_classes\": %zu,\n  \"dim\": %zu,\n", n_served_classes, d);
    std::fprintf(j, "  \"direct\": {\"rps\": %.2f, \"ms_per_request\": %.3f},\n",
                 direct_rps, direct_ms);
    std::fprintf(j, "  \"engine\": [\n");
    for (std::size_t i = 0; i < engine_rows.size(); ++i) {
      const auto& e = engine_rows[i];
      std::fprintf(j,
                   "    {\"scoring\": \"%s\", \"max_batch\": %zu, \"rps\": %.2f, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_batch\": %.2f}%s\n",
                   e.scoring.c_str(), e.max_batch, e.r.throughput_rps, e.r.p50_ms,
                   e.r.p99_ms, e.r.mean_batch, i + 1 < engine_rows.size() ? "," : "");
    }
    std::fprintf(j, "  ],\n");
    std::fprintf(j,
                 "  \"scoring_us_per_query\": {\"float\": %.3f, \"binary_x1\": %.3f, "
                 "\"binary_x8\": %.3f},\n",
                 us_float, us_bin1, us_bin8);
    std::fprintf(j,
                 "  \"binary_argmax_agreement\": {\"x1\": %.4f, \"x8\": %.4f},\n",
                 agree1, agree8);
    std::fprintf(j, "  \"batching_speedup_at_8\": %.3f,\n", batched8_rps / direct_rps);
    std::fprintf(j,
                 "  \"cold_start\": {\"retrain_s\": %.4f, \"snapshot_save_s\": %.4f, "
                 "\"snapshot_load_s\": %.4f, \"load_speedup_vs_retrain\": %.1f},\n",
                 retrain_s, save_s, load_s, retrain_s / load_s);
    std::fprintf(j,
                 "  \"multi_model\": {\"models\": %zu, \"bare_runtime_rps\": %.2f, "
                 "\"registry_1_rps\": %.2f, \"registry_n_rps\": %.2f, "
                 "\"routing_overhead_pct\": %.2f},\n",
                 n_models, batched8_rps, reg1_rps, regN_rps, routing_overhead_pct);
    std::fprintf(j,
                 "  \"observability\": {\"instrumented_rps\": %.2f, \"baseline_rps\": %.2f, "
                 "\"instrumented_p99_ms\": %.3f, \"overhead_pct\": %.2f, "
                 "\"target_pct\": 3.0, \"pass\": %s}\n",
                 obs_on_rps, obs_off_rps, obs_on_p99, obs_overhead_pct,
                 obs_pass ? "true" : "false");
    std::fprintf(j, "}\n");
    std::fclose(j);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // -- acceptance summary ----------------------------------------------------
  const double speedup = batched8_rps / direct_rps;
  std::printf("\ndynamic batching speedup @ max_batch=8: %.2fx over single-request "
              "serving (target >= 2x: %s)\n",
              speedup, speedup >= 2.0 ? "PASS" : "FAIL");
  std::printf("binary x1 scoring latency %.2f us/query vs float %.2f us/query "
              "(binary faster: %s)\n",
              us_bin1, us_float, us_bin1 < us_float ? "PASS" : "FAIL");
  std::printf("snapshot cold start: load %.3f s vs retrain %.2f s (%.0fx; faster: %s)\n",
              load_s, retrain_s, retrain_s / load_s, load_s < retrain_s ? "PASS" : "FAIL");
  std::printf("sharded scan @ S=4, C=%zu: %.2fx binary top-%zu throughput vs flat "
              "(target >= 1.5x: %s)\n",
              scan_classes.back(), accept_binary_speedup, scan_k,
              accept_binary_speedup >= 1.5 ? "PASS" : "FAIL");
  std::printf("gzsl penalized top-k bit-identical to penalized argsort: %s\n",
              gzsl_exact ? "PASS" : "FAIL");
  std::printf("observability overhead: %.2f %% throughput with full metrics+tracing "
              "(target <= 3 %%: %s)\n",
              obs_overhead_pct, obs_pass ? "PASS" : "FAIL");
  std::printf("wall time: %.1f s\n", wall.seconds());

  // -- metrics artifact (metrics.json CI upload): every metric the
  //    instrumented storms registered, quantiles included -------------------
  if (args.has("metrics-json")) {
    const std::string mpath = args.get_str("metrics-json", "metrics.json");
    obs::dump_metrics_file(mpath);
    std::printf("wrote %s\n", mpath.c_str());
  }
  return 0;
}
